// Tests for the stats module: summaries, histograms, quantile
// estimators, latency recorder, tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "stats/latency_recorder.hpp"
#include "stats/quantile.hpp"
#include "stats/report.hpp"
#include "stats/sketch.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

namespace brb::stats {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeEqualsSequential) {
  util::Rng rng(1);
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(10, 3);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  a.add(2.0);
  Summary b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Summary, NumericalStabilityLargeOffset) {
  Summary s;
  for (int i = 0; i < 10000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(Histogram, EmptyThrowsOnQuantile) {
  Histogram h;
  EXPECT_THROW(h.value_at_quantile(0.5), std::logic_error);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.median(), 1234);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::int64_t v = 0; v < 1000; ++v) h.record(v);
  // Values below the sub-bucket resolution are recorded exactly; the
  // median rank is ceil(0.5 * 1000) = 500th smallest, i.e. value 499.
  EXPECT_EQ(h.value_at_quantile(0.5), 499);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 999);
}

TEST(Histogram, RelativeErrorBounded) {
  Histogram h(3'600'000'000'000LL, 3);
  util::Rng rng(2);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 200000; ++i) {
    values.push_back(rng.uniform_int(1, 1'000'000'000));
    h.record(values.back());
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const auto exact = values[static_cast<std::size_t>(q * (values.size() - 1))];
    const auto approx = h.value_at_quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.01)
        << "q=" << q;
  }
}

TEST(Histogram, MeanTracksSum) {
  Histogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(Histogram, OverflowClampsAndCounts) {
  Histogram h(1000, 3);
  h.record(5000);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_LE(h.max(), 1000);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-17);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.value_at_quantile(0.5), 0);
}

TEST(Histogram, MergeSameGeometry) {
  Histogram a;
  Histogram b;
  util::Rng rng(3);
  Histogram reference;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(1, 10'000'000);
    (i % 2 == 0 ? a : b).record(v);
    reference.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), reference.count());
  EXPECT_EQ(a.value_at_quantile(0.99), reference.value_at_quantile(0.99));
  EXPECT_EQ(a.min(), reference.min());
  EXPECT_EQ(a.max(), reference.max());
}

TEST(Histogram, MergeDifferentGeometryApproximates) {
  Histogram coarse(1'000'000, 2);
  Histogram fine(1'000'000, 4);
  for (int i = 1; i <= 1000; ++i) fine.record(i * 997 % 1'000'000 + 1);
  coarse.merge(fine);
  EXPECT_EQ(coarse.count(), 1000u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_THROW(h.value_at_quantile(0.5), std::logic_error);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(1000, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1000, 6), std::invalid_argument);
}

TEST(Histogram, RecordNBulk) {
  Histogram h;
  h.record_n(42, 1000);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.median(), 42);
  h.record_n(42, 0);
  EXPECT_EQ(h.count(), 1000u);
}

TEST(ExactQuantiles, MatchesSortedOrderStats) {
  ExactQuantiles eq;
  for (int i = 100; i >= 1; --i) eq.add(i);
  EXPECT_DOUBLE_EQ(eq.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(eq.quantile(1.0), 100.0);
  // Type-7: h = q*(n-1); q=0.5 -> 50.5.
  EXPECT_DOUBLE_EQ(eq.quantile(0.5), 50.5);
}

TEST(ExactQuantiles, ThrowsWhenEmpty) {
  ExactQuantiles eq;
  EXPECT_THROW(eq.quantile(0.5), std::logic_error);
}

TEST(ExactQuantiles, SingleElement) {
  ExactQuantiles eq;
  eq.add(7.0);
  EXPECT_DOUBLE_EQ(eq.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(eq.quantile(0.99), 7.0);
}

TEST(ExactQuantiles, QuantileDoesNotReorderValues) {
  // Regression: quantile() used to nth_element the sample buffer in
  // place, scrambling values() and mutating under const.
  ExactQuantiles eq;
  for (int i = 100; i >= 1; --i) eq.add(i);
  const std::vector<double> before = eq.values();
  eq.quantile(0.5);
  eq.quantile(0.99);
  EXPECT_EQ(eq.values(), before);
}

TEST(ExactQuantiles, RepeatedQueriesUseSortedCache) {
  ExactQuantiles eq;
  util::Rng rng(17);
  for (int i = 0; i < 5000; ++i) eq.add(rng.uniform());
  const double first = eq.quantile(0.95);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(eq.quantile(0.95), first);
  // A mutation invalidates the cache even at unchanged count semantics.
  eq.add(1e9);
  EXPECT_DOUBLE_EQ(eq.quantile(1.0), 1e9);
}

TEST(ExactQuantiles, CacheInvalidatedByClearAndRefill) {
  ExactQuantiles eq;
  for (int i = 1; i <= 10; ++i) eq.add(i);
  EXPECT_DOUBLE_EQ(eq.quantile(1.0), 10.0);
  eq.clear();
  for (int i = 101; i <= 110; ++i) eq.add(i);  // same count, new values
  EXPECT_DOUBLE_EQ(eq.quantile(1.0), 110.0);
}

TEST(ExactQuantiles, ConcurrentQuantileReadsAreSafeAndConsistent) {
  // The parallel multi-seed runner reads AggregateResult percentiles
  // from several threads; racing first reads must agree.
  ExactQuantiles eq;
  util::Rng rng(18);
  for (int i = 0; i < 20000; ++i) eq.add(rng.exponential(1.0));
  ExactQuantiles reference = eq;
  const double expected_p50 = reference.quantile(0.5);
  const double expected_p99 = reference.quantile(0.99);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (eq.quantile(0.5) != expected_p50) mismatches.fetch_add(1);
        if (eq.quantile(0.99) != expected_p99) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ExactQuantiles, CopyAndAssignKeepSamples) {
  ExactQuantiles eq;
  for (int i = 1; i <= 9; ++i) eq.add(i);
  eq.quantile(0.5);  // populate the cache before copying
  const ExactQuantiles copy = eq;
  EXPECT_EQ(copy.count(), 9u);
  EXPECT_DOUBLE_EQ(copy.quantile(0.5), 5.0);
  ExactQuantiles assigned;
  assigned.add(42.0);
  assigned = eq;
  EXPECT_DOUBLE_EQ(assigned.quantile(1.0), 9.0);
}

class P2Sweep : public ::testing::TestWithParam<double> {};

TEST_P(P2Sweep, TracksUniformQuantile) {
  const double q = GetParam();
  P2Quantile p2(q);
  util::Rng rng(4);
  for (int i = 0; i < 200000; ++i) p2.add(rng.uniform());
  EXPECT_NEAR(p2.value(), q, 0.01) << "q=" << q;
}

TEST_P(P2Sweep, TracksExponentialQuantile) {
  const double q = GetParam();
  P2Quantile p2(q);
  util::Rng rng(5);
  ExactQuantiles exact;
  for (int i = 0; i < 200000; ++i) {
    const double v = rng.exponential(1.0);
    p2.add(v);
    exact.add(v);
  }
  const double truth = exact.quantile(q);
  EXPECT_NEAR(p2.value(), truth, std::max(0.02, truth * 0.05)) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Sweep, ::testing::Values(0.5, 0.9, 0.95, 0.99));

TEST(P2Quantile, FewSamplesFallsBackToExact) {
  P2Quantile p2(0.5);
  p2.add(3.0);
  p2.add(1.0);
  p2.add(2.0);
  EXPECT_DOUBLE_EQ(p2.value(), 2.0);
}

TEST(P2Quantile, SmallSampleMatchesExactQuantiles) {
  // Regression: the warmup path used nearest-rank, inconsistent with
  // the type-7 interpolation used by every other estimator here.
  util::Rng rng(19);
  for (int n = 1; n <= 5; ++n) {
    for (const double q : {0.25, 0.5, 0.9, 0.95, 0.99}) {
      P2Quantile p2(q);
      ExactQuantiles exact;
      for (int i = 0; i < n; ++i) {
        const double v = rng.uniform(0.0, 100.0);
        p2.add(v);
        exact.add(v);
      }
      EXPECT_DOUBLE_EQ(p2.value(), exact.quantile(q)) << "n=" << n << " q=" << q;
    }
  }
}

TEST(P2Quantile, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(P2Quantile, ThrowsWhenEmpty) {
  P2Quantile p2(0.5);
  EXPECT_THROW(p2.value(), std::logic_error);
}

TEST(ReservoirSample, KeepsAllWhenUnderCapacity) {
  ReservoirSample r(100, util::Rng(6));
  for (int i = 0; i < 50; ++i) r.add(i);
  EXPECT_EQ(r.sample().size(), 50u);
  EXPECT_EQ(r.seen(), 50u);
}

TEST(ReservoirSample, CapsAtCapacity) {
  ReservoirSample r(100, util::Rng(7));
  for (int i = 0; i < 10000; ++i) r.add(i);
  EXPECT_EQ(r.sample().size(), 100u);
  EXPECT_EQ(r.seen(), 10000u);
}

TEST(ReservoirSample, UniformInclusionProbability) {
  // Each element should survive with p = capacity/n; check the mean of
  // retained values is near the stream mean.
  ReservoirSample r(500, util::Rng(8));
  const int n = 50000;
  for (int i = 0; i < n; ++i) r.add(i);
  Summary s;
  for (const double v : r.sample()) s.add(v);
  EXPECT_NEAR(s.mean(), (n - 1) / 2.0, n * 0.05);
}

TEST(ReservoirSample, QuantileOnReservoir) {
  ReservoirSample r(1000, util::Rng(9));
  for (int i = 1; i <= 1000; ++i) r.add(i);
  EXPECT_NEAR(r.quantile(0.5), 500.5, 1.0);
}

TEST(ReservoirSample, RejectsZeroCapacity) {
  EXPECT_THROW(ReservoirSample(0, util::Rng(1)), std::invalid_argument);
}

TEST(ReservoirSample, ReplacementIndexUniformPastInt64Boundary) {
  // Regression: `seen_` used to be funneled through uniform_int's
  // int64 parameter, overflowing (UB) once a stream passes 2^63
  // observations. The replacement draw must stay uniform over the full
  // [0, seen) range beyond that boundary.
  util::Rng rng(20);
  const std::uint64_t seen = (1ULL << 63) + 987654321ULL;
  const std::uint64_t bucket_width = seen / 16 + 1;
  std::vector<int> buckets(16, 0);
  const int draws = 64000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t j = ReservoirSample::replacement_index(rng, seen);
    ASSERT_LT(j, seen);
    ++buckets[static_cast<std::size_t>(j / bucket_width)];
  }
  const double expected = draws / 16.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    EXPECT_NEAR(buckets[b], expected, expected * 0.10) << "bucket " << b;
  }
}

TEST(QuantileSketch, RejectsBadAlphaAndThrowsWhenEmpty) {
  EXPECT_THROW(QuantileSketch(0.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(1.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(-0.1), std::invalid_argument);
  QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.max(), std::logic_error);
}

TEST(QuantileSketch, ZeroBucketHoldsNonPositiveSamples) {
  QuantileSketch s;
  s.add(0.0);
  s.add(-2.0);
  s.add(10.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.bucket_count(), 1u);  // only the positive sample grids
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  // Rank 1 of 3 at q=0.5 is still a zero-bucket sample; the estimate
  // clamps to 0 (latencies cannot be negative downstream).
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(QuantileSketch, RelativeErrorBoundedOnHeavyTails) {
  // Heavy-tailed streams shaped like nanosecond latencies: lognormal
  // (skewed service) and exponential (queueing tail). Estimates must
  // stay within the documented alpha bound at every reported quantile,
  // plus a whisker for the rank-convention gap vs type-7 interpolation.
  util::Rng rng(21);
  QuantileSketch lognormal;
  ExactQuantiles lognormal_exact;
  QuantileSketch exponential;
  ExactQuantiles exponential_exact;
  for (int i = 0; i < 200000; ++i) {
    const double ln_v = std::exp(rng.normal(std::log(1e6), 1.5));
    lognormal.add(ln_v);
    lognormal_exact.add(ln_v);
    const double ex_v = rng.exponential(1.0 / 5e6);
    exponential.add(ex_v);
    exponential_exact.add(ex_v);
  }
  const double bound = QuantileSketch::kDefaultAlpha + 0.005;
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double ln_truth = lognormal_exact.quantile(q);
    EXPECT_NEAR(lognormal.quantile(q), ln_truth, ln_truth * bound) << "lognormal q=" << q;
    const double ex_truth = exponential_exact.quantile(q);
    EXPECT_NEAR(exponential.quantile(q), ex_truth, ex_truth * bound) << "exponential q=" << q;
  }
  const double ln_min = lognormal_exact.quantile(0.0);
  const double ln_max = lognormal_exact.quantile(1.0);
  EXPECT_NEAR(lognormal.quantile(0.0), ln_min, ln_min * bound);
  EXPECT_NEAR(lognormal.quantile(1.0), ln_max, ln_max * bound);
  EXPECT_DOUBLE_EQ(lognormal.min(), ln_min);
  EXPECT_DOUBLE_EQ(lognormal.max(), ln_max);
}

TEST(QuantileSketch, ShardMergeByteIdenticalForAnyPartition) {
  // The merge contract `brbsim merge` rides on: round-robin the stream
  // over N shard sketches, merge them in order, and the result must
  // serialize byte-identically to the unsharded sketch — for every N.
  util::Rng rng(22);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(std::exp(rng.normal(std::log(2e6), 1.2)));
  }
  samples[7] = 0.0;  // exercise the zero bucket across the partition
  QuantileSketch reference;
  for (const double v : samples) reference.add(v);
  const std::string reference_json = reference.to_json().dump_string(-1);

  for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
    std::vector<QuantileSketch> parts(shards);
    for (std::size_t i = 0; i < samples.size(); ++i) parts[i % shards].add(samples[i]);
    QuantileSketch merged = parts[0];
    for (std::size_t i = 1; i < shards; ++i) merged.merge(parts[i]);
    EXPECT_EQ(merged.to_json().dump_string(-1), reference_json) << "shards=" << shards;
    EXPECT_EQ(merged.count(), reference.count());
    EXPECT_DOUBLE_EQ(merged.quantile(0.99), reference.quantile(0.99));
  }
}

TEST(QuantileSketch, MergeIsCommutativeAndAssociative) {
  util::Rng rng(23);
  QuantileSketch a;
  QuantileSketch b;
  QuantileSketch c;
  for (int i = 0; i < 3000; ++i) {
    a.add(rng.exponential(1e-6));
    b.add(rng.uniform(1.0, 1e9));
    c.add(std::exp(rng.normal(10.0, 2.0)));
  }
  QuantileSketch abc = a;
  abc.merge(b);
  abc.merge(c);
  QuantileSketch cba = c;
  cba.merge(b);
  cba.merge(a);
  QuantileSketch bc = b;  // a + (b + c): associativity
  bc.merge(c);
  QuantileSketch a_bc = a;
  a_bc.merge(bc);
  const std::string expected = abc.to_json().dump_string(-1);
  EXPECT_EQ(cba.to_json().dump_string(-1), expected);
  EXPECT_EQ(a_bc.to_json().dump_string(-1), expected);
}

TEST(QuantileSketch, MergeRejectsAlphaMismatchAndAllowsEmpty) {
  QuantileSketch fine(0.01);
  QuantileSketch coarse(0.05);
  fine.add(1.0);
  coarse.add(1.0);
  EXPECT_THROW(fine.merge(coarse), std::invalid_argument);
  QuantileSketch empty;
  fine.merge(empty);  // no-op
  EXPECT_EQ(fine.count(), 1u);
  empty.merge(fine);  // adopts the other's extremes
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
}

TEST(QuantileSketch, JsonRoundTripPreservesEverything) {
  util::Rng rng(24);
  QuantileSketch s;
  for (int i = 0; i < 5000; ++i) s.add(rng.exponential(1e-7));
  s.add(0.0);
  const Json emitted = s.to_json();
  const QuantileSketch parsed = QuantileSketch::from_json(emitted);
  EXPECT_EQ(parsed.to_json().dump_string(-1), emitted.dump_string(-1));
  EXPECT_EQ(parsed.count(), s.count());
  EXPECT_DOUBLE_EQ(parsed.quantile(0.99), s.quantile(0.99));
  EXPECT_DOUBLE_EQ(parsed.min(), s.min());
  EXPECT_DOUBLE_EQ(parsed.max(), s.max());
  // An empty sketch round-trips too (no min/max keys emitted).
  const QuantileSketch empty_parsed = QuantileSketch::from_json(QuantileSketch().to_json());
  EXPECT_TRUE(empty_parsed.empty());
}

TEST(QuantileSketch, FromJsonRejectsMalformedDocuments) {
  for (const char* text :
       {"{}", "[1,2]", R"({"alpha":0.01,"count":1,"zero":0})",
        R"({"alpha":0.01,"count":0,"zero":0,"buckets":[[1]]})",
        R"({"alpha":0.01,"count":0,"zero":0,"buckets":[["x",1]]})"}) {
    EXPECT_THROW(QuantileSketch::from_json(Json::parse(text)), std::runtime_error) << text;
  }
}

TEST(LatencyRecorder, RecordsAndSummarizes) {
  LatencyRecorder r(false);
  r.record(sim::Duration::millis(1));
  r.record(sim::Duration::millis(2));
  r.record(sim::Duration::millis(3));
  EXPECT_EQ(r.count(), 3u);
  EXPECT_NEAR(r.mean().as_millis(), 2.0, 0.01);
  EXPECT_NEAR(r.percentile(50).as_millis(), 2.0, 0.02);
  EXPECT_EQ(r.min().count_nanos(), sim::Duration::millis(1).count_nanos());
  EXPECT_EQ(r.max().count_nanos(), sim::Duration::millis(3).count_nanos());
}

TEST(LatencyRecorder, RawModeIsExact) {
  LatencyRecorder r(true);
  for (int i = 1; i <= 1001; ++i) r.record(sim::Duration::nanos(i));
  EXPECT_EQ(r.percentile(50).count_nanos(), 501);
}

TEST(LatencyRecorder, NegativeDurationsClampToZero) {
  LatencyRecorder r(false);
  r.record(sim::Duration::nanos(-5));
  EXPECT_EQ(r.min().count_nanos(), 0);
}

TEST(LatencyRecorder, MergeCombines) {
  LatencyRecorder a(false);
  LatencyRecorder b(false);
  a.record(sim::Duration::millis(1));
  b.record(sim::Duration::millis(3));
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean().as_millis(), 2.0, 0.01);
}

TEST(LatencyRecorder, SketchIsOptIn) {
  LatencyRecorder off(false);
  off.record(sim::Duration::millis(1));
  EXPECT_EQ(off.sketch(), nullptr);

  LatencyRecorder on(false);
  on.enable_sketch();
  for (int ms = 1; ms <= 100; ++ms) on.record(sim::Duration::millis(ms));
  ASSERT_NE(on.sketch(), nullptr);
  EXPECT_EQ(on.sketch()->count(), 100u);
  EXPECT_NEAR(on.sketch()->percentile(99) / 1e6, 99.0, 99.0 * 0.02);
}

TEST(LatencyRecorder, MergeAndCopyCarryTheSketch) {
  LatencyRecorder a(false);
  a.enable_sketch();
  LatencyRecorder b(false);
  b.enable_sketch();
  a.record(sim::Duration::millis(1));
  b.record(sim::Duration::millis(2));
  a.merge(b);
  ASSERT_NE(a.sketch(), nullptr);
  EXPECT_EQ(a.sketch()->count(), 2u);

  // Copies must deep-copy: recording into the original cannot leak
  // into the copy (run results are copied into aggregates).
  const LatencyRecorder copy = a;
  a.record(sim::Duration::millis(3));
  ASSERT_NE(copy.sketch(), nullptr);
  EXPECT_EQ(copy.sketch()->count(), 2u);
  EXPECT_EQ(a.sketch()->count(), 3u);
}

TEST(Table, AlignsAndPrints) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableFormatters, Render) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_millis(2.5, 1), "2.5ms");
  EXPECT_EQ(fmt_ratio(1.987, 2), "1.99x");
}

TEST(Json, ScalarsRenderCompactly) {
  EXPECT_EQ(Json{}.dump_string(-1), "null");
  EXPECT_EQ(Json(true).dump_string(-1), "true");
  EXPECT_EQ(Json(42).dump_string(-1), "42");
  EXPECT_EQ(Json(std::uint64_t{7}).dump_string(-1), "7");
  EXPECT_EQ(Json(2.5).dump_string(-1), "2.5");
  EXPECT_EQ(Json("hi").dump_string(-1), "\"hi\"");
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Json j = Json::object();
  j["z"] = 1;
  j["a"] = 2;
  j["z"] = 3;  // update in place, no duplicate key
  EXPECT_EQ(j.dump_string(-1), "{\"z\":3,\"a\":2}");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, NestedStructuresRender) {
  Json j = Json::object();
  Json runs = Json::array();
  runs.push_back(1);
  runs.push_back("two");
  j["runs"] = std::move(runs);
  j["empty_obj"] = Json::object();
  j["empty_arr"] = Json::array();
  EXPECT_EQ(j.dump_string(-1), "{\"runs\":[1,\"two\"],\"empty_obj\":{},\"empty_arr\":[]}");
}

TEST(Json, EscapesStringsAndNonFiniteNumbers) {
  Json j = Json::object();
  j["s"] = "a\"b\\c\nd";
  j["nan"] = std::nan("");
  EXPECT_EQ(j.dump_string(-1), "{\"s\":\"a\\\"b\\\\c\\nd\",\"nan\":null}");
}

TEST(Json, TypeMisuseThrows) {
  Json arr = Json::array();
  arr.push_back(1);
  EXPECT_THROW(arr["key"], std::logic_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push_back(1), std::logic_error);
}

TEST(CsvField, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_field("plain"), "plain");
  EXPECT_EQ(csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
}

}  // namespace
}  // namespace brb::stats
