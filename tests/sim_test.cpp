// Tests for the discrete-event engine: ordering, stability,
// cancellation, clock semantics.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace brb::sim {
namespace {

using namespace brb::sim::literals;

TEST(Time, ArithmeticRoundTrips) {
  const Time t = Time::micros(100);
  const Duration d = Duration::micros(50);
  EXPECT_EQ((t + d).count_nanos(), 150'000);
  EXPECT_EQ((t + d) - d, t);
  EXPECT_EQ((t + d) - t, d);
}

TEST(Time, Literals) {
  EXPECT_EQ((5_us).count_nanos(), 5'000);
  EXPECT_EQ((2_ms).count_nanos(), 2'000'000);
  EXPECT_EQ((1_s).count_nanos(), 1'000'000'000);
  EXPECT_EQ((7_ns).count_nanos(), 7);
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time::micros(1), Time::micros(2));
  EXPECT_LE(Duration::zero(), Duration::nanos(0));
  EXPECT_GT(Duration::seconds(1), Duration::millis(999));
}

TEST(Time, DurationScaling) {
  EXPECT_EQ((Duration::micros(100) * 2.5).count_nanos(), 250'000);
  EXPECT_EQ((Duration::micros(100) / 4.0).count_nanos(), 25'000);
  EXPECT_DOUBLE_EQ(Duration::millis(3) / Duration::millis(1), 3.0);
}

TEST(Time, ToStringPicksScale) {
  EXPECT_EQ(to_string(Duration::nanos(5)), "5ns");
  EXPECT_EQ(to_string(Duration::micros(42)), "42.000us");
  EXPECT_EQ(to_string(Duration::millis(1.5)), "1.500ms");
  EXPECT_EQ(to_string(Duration::seconds(2)), "2.000s");
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(Time::micros(30), [&] { order.push_back(3); });
  q.push(Time::micros(10), [&] { order.push_back(1); });
  q.push(Time::micros(20), [&] { order.push_back(2); });
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.push(Time::micros(5), [&order, i] { order.push_back(i); });
  }
  while (auto e = q.pop()) e->fn();
  for (int i = 0; i < 100; ++i) ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.push(Time::micros(1), [&] { ++fired; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(Time::micros(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_FALSE(q.cancel(0));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.push(Time::micros(1), [&] { order.push_back(1); });
  const EventId id = q.push(Time::micros(2), [&] { order.push_back(2); });
  q.push(Time::micros(3), [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(id));
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, PeekTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(Time::micros(1), [] {});
  q.push(Time::micros(2), [] {});
  EXPECT_TRUE(q.cancel(early));
  ASSERT_TRUE(q.peek_time().has_value());
  EXPECT_EQ(*q.peek_time(), Time::micros(2));
}

TEST(EventQueue, RandomizedOrderingProperty) {
  util::Rng rng(99);
  EventQueue q;
  for (int i = 0; i < 5000; ++i) {
    q.push(Time::nanos(rng.uniform_int(0, 1000)), [] {});
  }
  Time last = Time::zero();
  std::size_t popped = 0;
  while (auto e = q.pop()) {
    ASSERT_GE(e->when, last);
    last = e->when;
    ++popped;
  }
  EXPECT_EQ(popped, 5000u);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Time seen = Time::zero();
  sim.schedule_at(Time::micros(123), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, Time::micros(123));
  EXPECT_EQ(sim.now(), Time::micros(123));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule_at(Time::micros(10), [&] {
    sim.schedule_after(Duration::micros(5), [&] { times.push_back(sim.now().count_nanos()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 15'000);
}

TEST(Simulator, ThrowsOnSchedulingInPast) {
  Simulator sim;
  sim.schedule_at(Time::micros(10), [&] {
    EXPECT_THROW(sim.schedule_at(Time::micros(5), [] {}), ScheduleInPastError);
    EXPECT_THROW(sim.schedule_after(Duration::micros(1) - Duration::micros(2), [] {}),
                 ScheduleInPastError);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::micros(10), [&] { ++fired; });
  sim.schedule_at(Time::micros(20), [&] { ++fired; });
  sim.schedule_at(Time::micros(30), [&] { ++fired; });
  const auto executed = sim.run_until(Time::micros(20));
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Time::micros(20));
  EXPECT_TRUE(sim.has_pending());
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(Time::millis(5));
  EXPECT_EQ(sim.now(), Time::millis(5));
}

TEST(Simulator, StopPreemptsRemainingEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::micros(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(Time::micros(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.has_pending());
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::micros(1), [&] { ++fired; });
  sim.schedule_at(Time::micros(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsProcessedAccumulates) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_at(Time::micros(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 10u);
}

TEST(Simulator, CancelledEventNeverRuns) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(Time::micros(5), [&] { ++fired; });
  sim.schedule_at(Time::micros(1), [&] { EXPECT_TRUE(sim.cancel(id)); });
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, SameInstantEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(Time::micros(7), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 50; ++i) ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingAtSameInstantRunsAfterEarlierPeers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Time::micros(1), [&] {
    order.push_back(1);
    // Same-time event scheduled mid-execution runs after already-queued
    // peers at that instant (sequence order).
    sim.schedule_at(Time::micros(1), [&] { order.push_back(3); });
  });
  sim.schedule_at(Time::micros(1), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace brb::sim
