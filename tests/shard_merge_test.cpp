// The sharded sweep subsystem: Json parse/emit round-trips, the
// deterministic plan partition, and the headline property — merging
// the artifacts of any N-way sharded run reproduces the unsharded
// artifact byte for byte (modulo the trailing "timing" subtree).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cli/driver.hpp"
#include "cli/sweep_plan.hpp"
#include "core/scenario.hpp"
#include "stats/artifact.hpp"
#include "stats/report.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace brb {
namespace {

using stats::Json;

// ---------------------------------------------------------------------------
// Json::parse — round trips and error handling

std::string reparse_compact(const std::string& text) {
  return Json::parse(text).dump_string(-1);
}

TEST(JsonParse, ScalarsRoundTrip) {
  for (const char* text : {"null", "true", "false", "0", "42", "-17", "\"hi\"", "2.5",
                           "-0.125", "1e+300", "9223372036854775807", "-9223372036854775808"}) {
    EXPECT_EQ(reparse_compact(text), text) << text;
  }
}

TEST(JsonParse, KindsAreClassified) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("42").kind(), Json::Kind::kInt);
  EXPECT_EQ(Json::parse("42.0").kind(), Json::Kind::kDouble);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e-3").as_double(), 0.0025);
  EXPECT_EQ(Json::parse("\"a b\"").as_string(), "a b");
  // as_double accepts integers too (artifact readers do arithmetic).
  EXPECT_DOUBLE_EQ(Json::parse("7").as_double(), 7.0);
}

TEST(JsonParse, NestedDocumentsRoundTrip) {
  const std::string text =
      R"({"tool":"brbsim","cases":[{"label":"a","runs":[1,2.5,null]},{"label":"b","runs":[]}],"empty":{}})";
  EXPECT_EQ(reparse_compact(text), text);
  // Indented emission parses back to the same document.
  const Json doc = Json::parse(text);
  EXPECT_EQ(Json::parse(doc.dump_string(2)).dump_string(-1), text);
}

TEST(JsonParse, StringEscapesRoundTrip) {
  const std::string text = R"json({"s":"a\"b\\c\nd\te","u":"\u0001x"})json";
  EXPECT_EQ(reparse_compact(text), text);
  EXPECT_EQ(Json::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("\u00e9")").as_string(), "\xc3\xa9");          // é
  EXPECT_EQ(Json::parse(R"("\u20ac")").as_string(), "\xe2\x82\xac");      // €
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");  // emoji
}

TEST(JsonParse, DoublesRoundTripExactly) {
  // Shortest-round-trip emission: parse(dump(x)) must recover the bits.
  util::Rng rng(20260728);
  for (int i = 0; i < 2000; ++i) {
    double value = rng.uniform(-1e6, 1e6);
    if (i % 3 == 0) value = rng.uniform() * 1e-9;
    if (i % 7 == 0) value = rng.uniform() * 1e18;
    const Json emitted(value);
    const Json parsed = Json::parse(emitted.dump_string(-1));
    // A short value like "5" legitimately reparses as an integer; the
    // numeric value must still match exactly.
    ASSERT_EQ(parsed.as_double(), value) << emitted.dump_string(-1);
    ASSERT_EQ(parsed.dump_string(-1), emitted.dump_string(-1));
  }
  EXPECT_EQ(Json(-0.0).dump_string(-1), "-0");
  EXPECT_EQ(reparse_compact("-0"), "-0");
}

TEST(JsonParse, MalformedInputThrows) {
  for (const char* text : {"", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
                           "{\"a\" 1}", "[1] trailing", "\"\\u12g4\"", "\"\\ud800\"",
                           "nan", "01a"}) {
    EXPECT_THROW(Json::parse(text), std::invalid_argument) << text;
  }
}

// ---------------------------------------------------------------------------
// ShardSpec + plan partition

TEST(ShardSpec, ParsesAndRejects) {
  const cli::ShardSpec spec = cli::ShardSpec::parse("2/3");
  EXPECT_EQ(spec.index, 2u);
  EXPECT_EQ(spec.count, 3u);
  EXPECT_EQ(spec.describe(), "2/3");
  EXPECT_TRUE(cli::ShardSpec::parse("1/1").is_full());
  for (const char* text : {"", "3", "0/3", "4/3", "1/0", "-1/3", "a/b", "1/2/3x"}) {
    EXPECT_THROW(cli::ShardSpec::parse(text), std::invalid_argument) << text;
  }
}

TEST(SweepPlan, DeterministicAndExactPartition) {
  const char* argv[] = {"brbsim", "--loads=0.5,0.7,0.9", "--tasks=1000"};
  const util::Flags flags(3, argv);
  const core::ScenarioConfig base = cli::config_from_flags(flags);
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
  const cli::SweepPlan plan = cli::build_sweep_plan("load-sweep", base, seeds, flags);
  const cli::SweepPlan again = cli::build_sweep_plan("load-sweep", base, seeds, flags);

  ASSERT_EQ(plan.units.size(), plan.cases.size() * seeds.size());
  ASSERT_EQ(plan.units.size(), again.units.size());
  for (std::size_t i = 0; i < plan.units.size(); ++i) {
    EXPECT_EQ(plan.units[i].id, again.units[i].id);
    EXPECT_EQ(plan.units[i].hash, again.units[i].hash);
  }

  // Every N-way partition covers each unit exactly once.
  for (const std::uint32_t n : {1u, 2u, 3u, 7u, 16u}) {
    std::size_t covered = 0;
    for (std::uint32_t i = 1; i <= n; ++i) {
      cli::ShardSpec shard;
      shard.index = i;
      shard.count = n;
      covered += plan.shard_units(shard).size();
      for (const cli::SweepUnit* unit : plan.shard_units(shard)) {
        EXPECT_EQ(cli::ShardSpec::bucket_of(unit->hash, n), i - 1);
      }
    }
    EXPECT_EQ(covered, plan.units.size()) << "N=" << n;
  }
}

TEST(SweepPlan, UnknownScenarioThrows) {
  const util::Flags flags(0, nullptr);
  EXPECT_THROW(cli::build_sweep_plan("nope", core::ScenarioConfig{}, {1}, flags),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The merge property: shard artifacts reassemble byte-identically

struct SweepCase {
  const char* scenario;
  std::vector<const char*> argv;
};

std::string deterministic_dump(Json doc) {
  doc.erase("timing");
  return doc.dump_string();
}

std::string csv_of(const Json& doc) {
  std::ostringstream os;
  stats::artifact_csv(os, doc);
  return os.str();
}

TEST(ShardMerge, MergedArtifactByteIdenticalToUnsharded) {
  // Scenario/override combos chosen to cover sweeps, writes, tenants
  // (optional JSON fields) and replication; utilization is drawn per
  // combo from a seeded rng so the property is exercised at varying
  // operating points rather than one hand-picked one.
  const std::vector<SweepCase> combos = {
      {"load-sweep",
       {"brbsim", "--loads=0.55,0.8", "--systems=c3,equalmax-credits", "--tasks=700",
        "--servers=5", "--clients=6"}},
      {"write-heavy",
       {"brbsim", "--writes=0.15", "--systems=equalmax-credits", "--tasks=700", "--servers=5",
        "--clients=6"}},
      {"multi-tenant",
       {"brbsim", "--systems=equalmax-credits", "--tasks=900", "--servers=5", "--clients=8"}},
      {"replication-sweep",
       {"brbsim", "--replications=1,3", "--systems=equalmax-model", "--tasks=600",
        "--servers=5", "--clients=6"}},
  };
  util::Rng rng(42);
  core::RunSeedsOptions options;
  options.max_threads = 2;

  for (const SweepCase& combo : combos) {
    SCOPED_TRACE(combo.scenario);
    std::vector<const char*> argv = combo.argv;
    const std::string utilization =
        "--utilization=" + std::to_string(0.5 + 0.1 * static_cast<double>(rng.uniform_int(0, 3)));
    argv.push_back(utilization.c_str());
    const util::Flags flags(static_cast<int>(argv.size()), argv.data());
    const core::ScenarioConfig base = cli::config_from_flags(flags);
    const std::vector<std::uint64_t> seeds = {1, 2, 3};
    const cli::SweepPlan plan = cli::build_sweep_plan(combo.scenario, base, seeds, flags);

    const Json full_doc = cli::report_json(
        combo.scenario, base, seeds, cli::execute_shard(plan, cli::ShardSpec{}, options));
    const std::string full_dump = deterministic_dump(full_doc);
    const std::string full_csv = csv_of(full_doc);

    for (const std::uint32_t n : {1u, 2u, 3u, 7u}) {
      SCOPED_TRACE("N=" + std::to_string(n));
      std::vector<Json> shards;
      for (std::uint32_t i = 1; i <= n; ++i) {
        cli::ShardSpec shard;
        shard.index = i;
        shard.count = n;
        const Json doc = cli::report_json(combo.scenario, base, seeds,
                                          cli::execute_shard(plan, shard, options), &shard);
        // Artifacts travel between machines as text; round-trip each
        // shard through serialization exactly as `brbsim merge` does —
        // which also asserts parse(dump(doc)) is byte-faithful.
        const std::string wire = doc.dump_string();
        Json reread = Json::parse(wire);
        ASSERT_EQ(reread.dump_string(), wire);
        shards.push_back(std::move(reread));
      }
      const Json merged = stats::merge_artifacts(shards);
      EXPECT_EQ(deterministic_dump(merged), full_dump);
      EXPECT_EQ(csv_of(merged), full_csv);
    }
  }
}

TEST(ShardMerge, SketchArtifactsMergeByteIdentically) {
  // --stats=sketch runs carry per-run and pooled case-level sketches;
  // the merger must rebuild the pooled sketch from per-seed sketches
  // (pure bucket addition) so the merged block is byte-identical to
  // the unsharded one for any shard count.
  const char* argv[] = {"brbsim",     "--systems=c3,equalmax-credits",
                        "--tasks=600", "--servers=5",
                        "--clients=6", "--stats=sketch"};
  const util::Flags flags(6, argv);
  const core::ScenarioConfig base = cli::config_from_flags(flags);
  const std::vector<std::uint64_t> seeds = {1, 2, 3};
  const cli::SweepPlan plan = cli::build_sweep_plan("paper", base, seeds, flags);
  core::RunSeedsOptions options;
  options.max_threads = 2;

  const Json full_doc = cli::report_json(
      "paper", base, seeds, cli::execute_shard(plan, cli::ShardSpec{}, options));
  for (const Json& item : full_doc.at("cases").items()) {
    const Json* pooled = item.find("task_latency_sketch");
    ASSERT_NE(pooled, nullptr);
    std::int64_t run_total = 0;
    for (const Json& run : item.at("runs").items()) {
      const Json* per_run = run.find("task_latency_sketch");
      ASSERT_NE(per_run, nullptr);
      run_total += per_run->at("count").as_int();
    }
    EXPECT_EQ(pooled->at("count").as_int(), run_total);
  }

  for (const std::uint32_t n : {2u, 3u}) {
    SCOPED_TRACE("N=" + std::to_string(n));
    std::vector<Json> shards;
    for (std::uint32_t i = 1; i <= n; ++i) {
      cli::ShardSpec shard;
      shard.index = i;
      shard.count = n;
      shards.push_back(cli::report_json("paper", base, seeds,
                                        cli::execute_shard(plan, shard, options), &shard));
    }
    const Json merged = stats::merge_artifacts(shards);
    EXPECT_EQ(deterministic_dump(merged), deterministic_dump(full_doc));
    EXPECT_EQ(csv_of(merged), csv_of(full_doc));
  }
}

TEST(ShardMerge, PeakRssIsMaxOverShards) {
  // RSS budgets are per worker process, so the merged figure is the
  // worst shard — never the sum.
  const char* argv[] = {"brbsim", "--systems=equalmax-credits", "--tasks=400", "--servers=4",
                        "--clients=4"};
  const util::Flags flags(5, argv);
  const core::ScenarioConfig base = cli::config_from_flags(flags);
  const std::vector<std::uint64_t> seeds = {1, 2};
  const cli::SweepPlan plan = cli::build_sweep_plan("paper", base, seeds, flags);
  core::RunSeedsOptions options;
  options.max_threads = 2;

  std::vector<Json> shards;
  for (std::uint32_t i = 1; i <= 2; ++i) {
    cli::ShardSpec shard;
    shard.index = i;
    shard.count = 2;
    shards.push_back(cli::report_json("paper", base, seeds,
                                      cli::execute_shard(plan, shard, options), &shard));
  }
  shards[0]["timing"]["peak_rss_mb"] = 512.0;
  shards[1]["timing"]["peak_rss_mb"] = 7168.0;
  const Json merged = stats::merge_artifacts(shards);
  EXPECT_EQ(merged.at("timing").at("peak_rss_mb").as_double(), 7168.0);

  // A shard missing the field (older artifact) degrades gracefully:
  // the max is taken over the shards that have it.
  shards[1]["timing"].erase("peak_rss_mb");
  const Json degraded = stats::merge_artifacts(shards);
  EXPECT_EQ(degraded.at("timing").at("peak_rss_mb").as_double(), 512.0);
}

TEST(ShardMerge, ArtifactQuarantinesTimingLast) {
  const char* argv[] = {"brbsim", "--systems=equalmax-credits", "--tasks=500", "--servers=4",
                        "--clients=4"};
  const util::Flags flags(5, argv);
  const core::ScenarioConfig base = cli::config_from_flags(flags);
  const std::vector<std::uint64_t> seeds = {1, 2};
  const cli::SweepPlan plan = cli::build_sweep_plan("paper", base, seeds, flags);
  core::RunSeedsOptions options;
  options.max_threads = 2;
  const Json doc =
      cli::report_json("paper", base, seeds, cli::execute_shard(plan, cli::ShardSpec{}, options));

  ASSERT_FALSE(doc.members().empty());
  EXPECT_EQ(doc.members().back().first, "timing");
  EXPECT_EQ(doc.at("format").as_int(), stats::kArtifactFormat);
  const Json& timing = doc.at("timing");
  EXPECT_EQ(timing.at("cases").size(), doc.at("cases").size());
  // No nondeterministic field outside the timing subtree.
  EXPECT_EQ(deterministic_dump(doc).find("wall_seconds"), std::string::npos);
  for (const Json& item : doc.at("cases").items()) {
    for (const Json& run : item.at("runs").items()) {
      EXPECT_EQ(run.find("wall_seconds"), nullptr);
    }
  }
  // The CSV projection is fully deterministic too.
  EXPECT_EQ(csv_of(doc).find("wall_seconds"), std::string::npos);
}

TEST(ShardMerge, RejectsInconsistentShards) {
  const char* argv[] = {"brbsim", "--systems=equalmax-credits,c3", "--tasks=400",
                        "--servers=4", "--clients=4"};
  const util::Flags flags(5, argv);
  const core::ScenarioConfig base = cli::config_from_flags(flags);
  const std::vector<std::uint64_t> seeds = {1, 2};
  const cli::SweepPlan plan = cli::build_sweep_plan("paper", base, seeds, flags);
  core::RunSeedsOptions options;
  options.max_threads = 1;

  cli::ShardSpec one_of_two;
  one_of_two.index = 1;
  one_of_two.count = 2;
  cli::ShardSpec two_of_two;
  two_of_two.index = 2;
  two_of_two.count = 2;
  const Json shard1 = cli::report_json("paper", base, seeds,
                                       cli::execute_shard(plan, one_of_two, options), &one_of_two);
  const Json shard2 = cli::report_json("paper", base, seeds,
                                       cli::execute_shard(plan, two_of_two, options), &two_of_two);

  // Happy path: both halves merge.
  EXPECT_NO_THROW(stats::merge_artifacts({shard1, shard2}));
  // A unit executed twice, a unit missing, and an empty input all fail.
  EXPECT_THROW(stats::merge_artifacts({shard1, shard1, shard2}), std::runtime_error);
  EXPECT_THROW(stats::merge_artifacts({shard1}), std::runtime_error);
  EXPECT_THROW(stats::merge_artifacts({}), std::runtime_error);

  // A shard of a different sweep (different seed plan) is rejected.
  const std::vector<std::uint64_t> other_seeds = {7, 8};
  const cli::SweepPlan other_plan = cli::build_sweep_plan("paper", base, other_seeds, flags);
  const Json other = cli::report_json(
      "paper", base, other_seeds, cli::execute_shard(other_plan, one_of_two, options),
      &one_of_two);
  EXPECT_THROW(stats::merge_artifacts({shard1, other}), std::runtime_error);

  // Garbage documents are rejected up front.
  EXPECT_THROW(stats::merge_artifacts({Json::parse("{\"tool\":\"other\"}")}),
               std::runtime_error);
}

TEST(ShardMerge, EmptyShardContributesNothing) {
  // More shards than units: some shards own nothing, and the merge of
  // all of them still reassembles the whole sweep.
  const char* argv[] = {"brbsim", "--systems=equalmax-credits", "--tasks=400", "--servers=4",
                        "--clients=4"};
  const util::Flags flags(5, argv);
  const core::ScenarioConfig base = cli::config_from_flags(flags);
  const std::vector<std::uint64_t> seeds = {1};
  const cli::SweepPlan plan = cli::build_sweep_plan("paper", base, seeds, flags);
  ASSERT_EQ(plan.units.size(), 1u);
  core::RunSeedsOptions options;
  options.max_threads = 1;

  const Json full = cli::report_json("paper", base, seeds,
                                     cli::execute_shard(plan, cli::ShardSpec{}, options));
  std::vector<Json> shards;
  for (std::uint32_t i = 1; i <= 3; ++i) {
    cli::ShardSpec shard;
    shard.index = i;
    shard.count = 3;
    shards.push_back(cli::report_json("paper", base, seeds,
                                      cli::execute_shard(plan, shard, options), &shard));
  }
  const Json merged = stats::merge_artifacts(shards);
  EXPECT_EQ(deterministic_dump(merged), deterministic_dump(full));
}

}  // namespace
}  // namespace brb
