// Scenario-diversity subsystem tests: heterogeneous cluster specs and
// capacity arithmetic, modulated (diurnal) arrivals, the write path,
// multi-tenant generation and fairness accounting, flag conflicts, and
// thread-count determinism of every new registry scenario's artifacts.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "cli/driver.hpp"
#include "cli/scenario_registry.hpp"
#include "core/scenario.hpp"
#include "server/backend_server.hpp"
#include "server/queue_discipline.hpp"
#include "server/service_model.hpp"
#include "sim/simulator.hpp"
#include "store/types.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/capacity.hpp"
#include "workload/fanout_dist.hpp"
#include "workload/key_dist.hpp"
#include "workload/size_dist.hpp"
#include "workload/task_gen.hpp"

namespace brb {
namespace {

// ---------------------------------------------------------------------------
// Heterogeneous ClusterSpec + CapacityPlanner

TEST(HeteroCluster, ParseAndPerServerShapes) {
  const auto spec = workload::ClusterSpec::parse("hetero:6x4x3500,3x8x7000");
  ASSERT_TRUE(spec.heterogeneous());
  EXPECT_EQ(spec.num_servers, 9u);
  EXPECT_EQ(spec.total_cores(), 6u * 4u + 3u * 8u);
  // Servers are numbered class by class in declaration order.
  for (std::uint32_t s = 0; s < 6; ++s) {
    EXPECT_EQ(spec.cores_of(s), 4u) << s;
    EXPECT_DOUBLE_EQ(spec.rate_of(s), 3500.0) << s;
    EXPECT_DOUBLE_EQ(spec.capacity_of(s), 14000.0) << s;
  }
  for (std::uint32_t s = 6; s < 9; ++s) {
    EXPECT_EQ(spec.cores_of(s), 8u) << s;
    EXPECT_DOUBLE_EQ(spec.rate_of(s), 7000.0) << s;
    EXPECT_DOUBLE_EQ(spec.capacity_of(s), 56000.0) << s;
  }
  EXPECT_THROW(spec.cores_of(9), std::out_of_range);
  EXPECT_EQ(spec.describe(), "hetero:6x4x3500,3x8x7000");
}

TEST(HeteroCluster, PlannerSumsMixedFleetCapacity) {
  const workload::CapacityPlanner planner(
      workload::ClusterSpec::parse("hetero:6x4x3500,3x8x7000"));
  // 6*4*3500 + 3*8*7000 = 84000 + 168000.
  EXPECT_DOUBLE_EQ(planner.system_capacity_rps(), 252000.0);
  EXPECT_DOUBLE_EQ(planner.request_rate_for_utilization(0.5), 126000.0);
  EXPECT_DOUBLE_EQ(planner.task_rate_for_utilization(0.5, 10.0), 12600.0);
  EXPECT_NEAR(planner.utilization_for_task_rate(12600.0, 10.0), 0.5, 1e-12);
}

TEST(HeteroCluster, HomogeneousPathUnchanged) {
  // The default ClusterSpec must plan exactly as it did pre-hetero.
  const workload::CapacityPlanner planner{workload::ClusterSpec{}};
  EXPECT_DOUBLE_EQ(planner.system_capacity_rps(), 9.0 * 4.0 * 3500.0);
  EXPECT_EQ(workload::ClusterSpec{}.describe(), "9x4x3500");
}

TEST(HeteroCluster, UniformShorthandAndErrors) {
  const auto uniform = workload::ClusterSpec::parse("uniform:5x2x1000");
  EXPECT_FALSE(uniform.heterogeneous());
  EXPECT_EQ(uniform.num_servers, 5u);
  EXPECT_EQ(uniform.cores_per_server, 2u);
  EXPECT_DOUBLE_EQ(uniform.service_rate_per_core, 1000.0);

  EXPECT_THROW(workload::ClusterSpec::parse("hetero:"), std::invalid_argument);
  EXPECT_THROW(workload::ClusterSpec::parse("9x4x3500"), std::invalid_argument);
  EXPECT_THROW(workload::ClusterSpec::parse("hetero:0x4x3500"), std::invalid_argument);
  EXPECT_THROW(workload::ClusterSpec::parse("hetero:3x0x3500"), std::invalid_argument);
  EXPECT_THROW(workload::ClusterSpec::parse("hetero:3x4x0"), std::invalid_argument);
  EXPECT_THROW(workload::ClusterSpec::parse("hetero:3x4"), std::invalid_argument);
  EXPECT_THROW(workload::ClusterSpec::parse("hetero:axbxc"), std::invalid_argument);
  EXPECT_THROW(workload::ClusterSpec::parse("mystery:3x4x100"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ModulatedArrivals

TEST(ModulatedArrivals, GapsStrictlyPositive) {
  util::Rng rng(11);
  auto arrivals = workload::make_arrival_process("diurnal:0.4:0.9:0.5", 2000.0);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GT(arrivals->next_gap(rng).count_nanos(), 0);
  }
}

TEST(ModulatedArrivals, DiurnalPreservesMeanRateOverWholePeriods) {
  // The envelope is normalized to unit mean, so arrivals over k whole
  // periods must average the nominal rate.
  util::Rng rng(7);
  const double rate = 5000.0;
  const double period_s = 0.25;
  workload::ModulatedArrivals arrivals(
      rate, workload::ModulatedArrivals::Envelope::diurnal(0.4, 0.9, period_s));
  const double horizon_s = 80 * period_s;  // 100k expected arrivals
  double t = 0.0;
  std::uint64_t count = 0;
  while (true) {
    t += arrivals.next_gap(rng).as_seconds();
    if (t > horizon_s) break;
    ++count;
  }
  const double observed_rate = static_cast<double>(count) / horizon_s;
  EXPECT_NEAR(observed_rate / rate, 1.0, 0.03);
}

TEST(ModulatedArrivals, StepsEnvelopeNormalizedAndPreservesMean) {
  const auto envelope =
      workload::ModulatedArrivals::Envelope::piecewise({0.5, 1.5, 2.0}, 0.3);
  // Normalized to unit mean: (0.5 + 1.5 + 2.0)/3 scales away.
  EXPECT_NEAR(envelope.at(0.0), 0.375, 1e-12);
  EXPECT_NEAR(envelope.at(0.11), 1.125, 1e-12);
  EXPECT_NEAR(envelope.at(0.21), 1.5, 1e-12);
  EXPECT_NEAR(envelope.at(0.31), 0.375, 1e-12);  // wraps around

  util::Rng rng(3);
  workload::ModulatedArrivals arrivals(4000.0, envelope);
  double t = 0.0;
  std::uint64_t count = 0;
  const double horizon_s = 100 * 0.3;
  while (true) {
    t += arrivals.next_gap(rng).as_seconds();
    if (t > horizon_s) break;
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count) / horizon_s / 4000.0, 1.0, 0.03);
}

TEST(ModulatedArrivals, ModulationActuallyShapesArrivals) {
  // More arrivals must land in the crest half-period than the trough.
  util::Rng rng(5);
  workload::ModulatedArrivals arrivals(
      8000.0, workload::ModulatedArrivals::Envelope::diurnal(0.25, 1.75, 1.0));
  double t = 0.0;
  std::uint64_t crest = 0;
  std::uint64_t trough = 0;
  while (t < 50.0) {
    t += arrivals.next_gap(rng).as_seconds();
    const double phase = t - std::floor(t);
    if (phase < 0.5) {
      ++crest;  // sin > 0: above-mean rate
    } else {
      ++trough;
    }
  }
  EXPECT_GT(static_cast<double>(crest), 1.5 * static_cast<double>(trough));
}

TEST(ModulatedArrivals, SpecParsingAndErrors) {
  EXPECT_EQ(workload::make_arrival_process("", 100.0)->name(), "poisson");
  EXPECT_EQ(workload::make_arrival_process("poisson", 100.0)->name(), "poisson");
  EXPECT_EQ(workload::make_arrival_process("paced", 100.0)->name(), "paced");
  EXPECT_EQ(workload::make_arrival_process("diurnal:0.5:1.5:60", 100.0)->name(), "modulated");
  EXPECT_EQ(workload::make_arrival_process("steps:1,2,1:10", 100.0)->name(), "modulated");

  EXPECT_THROW(workload::make_arrival_process("diurnal:0:1.5:60", 100.0), std::invalid_argument);
  EXPECT_THROW(workload::make_arrival_process("diurnal:1.5:0.5:60", 100.0),
               std::invalid_argument);
  EXPECT_THROW(workload::make_arrival_process("diurnal:0.5:1.5:0", 100.0), std::invalid_argument);
  EXPECT_THROW(workload::make_arrival_process("diurnal:0.5:1.5", 100.0), std::invalid_argument);
  EXPECT_THROW(workload::make_arrival_process("steps:1,-2:10", 100.0), std::invalid_argument);
  EXPECT_THROW(workload::make_arrival_process("steps::10", 100.0), std::invalid_argument);
  EXPECT_THROW(workload::make_arrival_process("sawtooth:1:2", 100.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Write path

TEST(WritePath, ServerInstallsNewSizeAndAcks) {
  sim::Simulator sim;
  server::DeterministicServiceModel model(sim::Duration::micros(10));
  server::BackendServer::Config config;
  config.id = 0;
  config.cores = 1;
  server::BackendServer server(sim, config, model, util::Rng(1));
  server.use_private_queue(server::make_discipline("fifo"));
  server.storage().put_meta(42, 100);

  std::vector<store::ReadResponse> responses;
  server.set_response_handler(
      [&responses](const store::ReadResponse& response) { responses.push_back(response); });

  store::ReadRequest write;
  write.request_id = 1;
  write.key = 42;
  write.is_write = true;
  write.write_size = 9000;
  server.receive(write);
  store::ReadRequest read;
  read.request_id = 2;
  read.key = 42;
  server.receive(read);
  sim.run();

  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].is_write);
  EXPECT_EQ(responses[0].value_size, 0u);  // bare acknowledgement
  // The read served after the write observes the resized value.
  EXPECT_FALSE(responses[1].is_write);
  EXPECT_EQ(responses[1].value_size, 9000u);
  EXPECT_EQ(server.storage().size_of(42).value_or(0), 9000u);
}

TEST(WritePath, WireBytesCarryWritePayloadOutbound) {
  store::ReadRequest read;
  EXPECT_EQ(store::request_wire_bytes(read), store::kRequestWireBytes);
  store::ReadRequest write;
  write.is_write = true;
  write.write_size = 512;
  EXPECT_EQ(store::request_wire_bytes(write), store::kRequestWireBytes + 512);
}

core::RunResult run_small(core::SystemKind system, double write_fraction,
                          const std::string& tenant_spec = "") {
  core::ScenarioConfig config;
  config.system = system;
  config.num_tasks = 1200;
  config.cluster.num_servers = 5;
  config.num_clients = 6;
  config.replication = 3;
  config.write_fraction = write_fraction;
  config.tenant_spec = tenant_spec;
  config.seed = 3;
  return core::run_scenario(config);
}

TEST(WritePath, EveryReplicaCopyAcknowledged) {
  for (const core::SystemKind system :
       {core::SystemKind::kEqualMaxCredits, core::SystemKind::kC3,
        core::SystemKind::kEqualMaxModel}) {
    const core::RunResult result = run_small(system, 0.5);
    EXPECT_EQ(result.tasks_completed, 1200u) << to_string(system);
    EXPECT_GT(result.write_requests_sent, 0u) << to_string(system);
    EXPECT_EQ(result.write_requests_acked, result.write_requests_sent) << to_string(system);
    // Write replica copies come in multiples of the replication factor.
    EXPECT_EQ(result.write_requests_sent % 3, 0u) << to_string(system);
    EXPECT_EQ(result.gate_held_requests, 0u) << to_string(system);
  }
}

TEST(WritePath, ReadOnlyRunsStayWriteFree) {
  const core::RunResult result = run_small(core::SystemKind::kEqualMaxCredits, 0.0);
  EXPECT_EQ(result.write_requests_sent, 0u);
  EXPECT_EQ(result.write_requests_acked, 0u);
}

TEST(WritePath, AllWritesFanOutEveryRequest) {
  const core::RunResult result = run_small(core::SystemKind::kEqualMaxCredits, 1.0);
  // Every request is a write copy: requests_completed = writes acked.
  EXPECT_EQ(result.write_requests_acked, result.requests_completed);
  EXPECT_EQ(result.tasks_completed, 1200u);
}

TEST(WritePath, CapacityPlanningAccountsForWriteAmplification) {
  // At write_fraction=0.5 and R=3 each task offers 2x the requests of
  // its read-only counterpart; without the amplification term in the
  // task-rate arithmetic this run would execute at ~1.4x capacity
  // (saturated servers), not the configured 70%.
  const core::RunResult result = run_small(core::SystemKind::kEqualMaxCredits, 0.5);
  EXPECT_GT(result.mean_utilization, 0.40);
  EXPECT_LT(result.mean_utilization, 0.85);
}

TEST(WritePath, MixedReadWriteOverrideTasksStillSelectForReads) {
  // Mixed tasks cannot come out of the generator (write decisions are
  // task-level) but are legal through tasks_override; the reads must
  // still go through replica selection rather than defaulting to
  // server 0.
  std::vector<workload::TaskSpec> tasks;
  for (int i = 0; i < 200; ++i) {
    workload::TaskSpec task;
    task.id = static_cast<store::TaskId>(i);
    task.client = static_cast<store::ClientId>(i % 6);
    task.arrival = sim::Time::micros(100 + 50 * i);
    task.requests.push_back({static_cast<store::KeyId>(i % 40), 200, /*is_write=*/true});
    task.requests.push_back({static_cast<store::KeyId>((i + 7) % 40), 300, false});
    tasks.push_back(std::move(task));
  }
  core::ScenarioConfig config;
  config.system = core::SystemKind::kEqualMaxCredits;
  config.cluster.num_servers = 5;
  config.num_clients = 6;
  config.replication = 3;
  config.tasks_override = &tasks;
  config.seed = 2;
  const core::RunResult result = core::run_scenario(config);
  EXPECT_EQ(result.tasks_completed, 200u);
  // One write per task, fanned out to all 3 replicas.
  EXPECT_EQ(result.write_requests_acked, 200u * 3u);
  // One read per task on top of the write copies.
  EXPECT_EQ(result.requests_completed, 200u * 4u);
}

// ---------------------------------------------------------------------------
// Multi-tenant generation + fairness accounting

workload::TaskGenerator make_tenant_generator(const workload::Dataset& dataset,
                                              const workload::KeyDistribution& keys,
                                              const workload::FanoutDistribution& fanout,
                                              const std::string& spec) {
  workload::TaskGenerator::Config config;
  config.num_clients = 10;
  workload::TaskGenerator generator(config, dataset, keys, fanout,
                                    std::make_unique<workload::PoissonArrivals>(1000.0),
                                    util::Rng(5));
  generator.set_tenants(workload::parse_tenant_mixes(spec));
  return generator;
}

TEST(MultiTenant, ParseErrorsNameTheOffendingField) {
  try {
    workload::parse_tenant_mixes("fg,share=abc");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("share=abc"), std::string::npos) << e.what();
  }
  try {
    workload::parse_tenant_mixes("fg,write=x");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("write=x"), std::string::npos) << e.what();
  }
}

TEST(ScenarioExpanders, HeteroServersRejectsScalarFleetFlags) {
  const cli::ScenarioSpec* scenario = cli::find_scenario("hetero-servers");
  ASSERT_NE(scenario, nullptr);
  const char* argv[] = {"brbsim", "--servers=5"};
  const util::Flags flags(2, argv);
  EXPECT_THROW(scenario->expand(cli::config_from_flags(flags), flags), std::invalid_argument);
  // An explicit profile wins over the scenario default.
  const char* cluster_argv[] = {"brbsim", "--cluster=hetero:2x2x3500,1x4x7000"};
  const util::Flags cluster_flags(2, cluster_argv);
  const auto cases = scenario->expand(cli::config_from_flags(cluster_flags), cluster_flags);
  ASSERT_FALSE(cases.empty());
  EXPECT_EQ(cases.front().config.cluster.num_servers, 3u);
}

TEST(ScenarioExpanders, LargeClusterRespectsClusterProfile) {
  const cli::ScenarioSpec* scenario = cli::find_scenario("large-cluster");
  ASSERT_NE(scenario, nullptr);
  const char* argv[] = {"brbsim", "--cluster=hetero:6x4x3500,3x8x7000"};
  const util::Flags flags(2, argv);
  const auto cases = scenario->expand(cli::config_from_flags(flags), flags);
  ASSERT_FALSE(cases.empty());
  // The profile's 9-server fleet must not be inflated to the scenario's
  // default 100 (which would contradict the class counts and throw
  // deep inside capacity planning).
  EXPECT_EQ(cases.front().config.cluster.num_servers, 9u);
  EXPECT_TRUE(cases.front().config.cluster.heterogeneous());
}

TEST(ScenarioExpanders, ReplicationSweepRejectsNonIntegerFactors) {
  const cli::ScenarioSpec* scenario = cli::find_scenario("replication-sweep");
  ASSERT_NE(scenario, nullptr);
  const char* argv[] = {"brbsim", "--replications=1.5,3"};
  const util::Flags flags(2, argv);
  EXPECT_THROW(scenario->expand(core::ScenarioConfig{}, flags), std::invalid_argument);
}

TEST(MultiTenant, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(workload::parse_tenant_mixes(""), std::invalid_argument);
  EXPECT_THROW(workload::parse_tenant_mixes("a;a"), std::invalid_argument);
  EXPECT_THROW(workload::parse_tenant_mixes("a,share=0"), std::invalid_argument);
  EXPECT_THROW(workload::parse_tenant_mixes("a,share=-1"), std::invalid_argument);
  EXPECT_THROW(workload::parse_tenant_mixes("a,write=1.5"), std::invalid_argument);
  EXPECT_THROW(workload::parse_tenant_mixes("a,bogus=1"), std::invalid_argument);
  EXPECT_THROW(workload::parse_tenant_mixes("share=1"), std::invalid_argument);
  EXPECT_THROW(workload::parse_tenant_mixes("a,share"), std::invalid_argument);
  EXPECT_THROW(workload::parse_tenant_mixes("a,fanout=nosuch:1"), std::invalid_argument);

  const auto mixes = workload::parse_tenant_mixes("fg,share=3,fanout=fixed:2;bg,write=0.25");
  ASSERT_EQ(mixes.size(), 2u);
  EXPECT_EQ(mixes[0].name, "fg");
  EXPECT_DOUBLE_EQ(mixes[0].share, 3.0);
  ASSERT_NE(mixes[0].fanout, nullptr);
  EXPECT_EQ(mixes[1].name, "bg");
  EXPECT_DOUBLE_EQ(mixes[1].write_fraction, 0.25);
}

TEST(MultiTenant, ClientsPartitionIntoShareProportionalBlocks) {
  util::Rng rng(1);
  const workload::FixedSizeDist sizes(100);
  workload::Dataset dataset(1000, sizes, rng.split());
  const workload::UniformKeys keys(1000);
  const workload::FixedFanout fanout(4);
  auto generator =
      make_tenant_generator(dataset, keys, fanout, "fg,share=0.7,fanout=fixed:2;bg,share=0.3");

  ASSERT_EQ(generator.num_tenants(), 2u);
  const auto [fg_begin, fg_end] = generator.tenant_clients(0);
  const auto [bg_begin, bg_end] = generator.tenant_clients(1);
  EXPECT_EQ(fg_begin, 0u);
  EXPECT_EQ(fg_end, 7u);  // 0.7 of 10 clients
  EXPECT_EQ(bg_begin, 7u);
  EXPECT_EQ(bg_end, 10u);

  // Generated tasks respect tenant client blocks and fan-out mixes.
  std::set<std::uint32_t> seen_tenants;
  for (int i = 0; i < 2000; ++i) {
    const workload::TaskSpec task = generator.next();
    seen_tenants.insert(task.tenant.value());
    if (task.tenant == store::TenantId{0}) {
      EXPECT_LT(task.client, 7u);
      EXPECT_EQ(task.fanout(), 2u);  // tenant override
    } else {
      EXPECT_GE(task.client, 7u);
      EXPECT_LT(task.client, 10u);
      EXPECT_EQ(task.fanout(), 4u);  // base fan-out
    }
  }
  EXPECT_EQ(seen_tenants.size(), 2u);
}

TEST(MultiTenant, TenantWriteFractionNeedsSizes) {
  util::Rng rng(1);
  const workload::FixedSizeDist sizes(100);
  workload::Dataset dataset(100, sizes, rng.split());
  const workload::UniformKeys keys(100);
  const workload::FixedFanout fanout(2);
  workload::TaskGenerator::Config config;
  config.num_clients = 4;
  workload::TaskGenerator generator(config, dataset, keys, fanout,
                                    std::make_unique<workload::PoissonArrivals>(100.0),
                                    util::Rng(2));
  EXPECT_THROW(generator.set_tenants(workload::parse_tenant_mixes("a,write=0.5;b")),
               std::invalid_argument);
  generator.set_write_traffic(0.0, &sizes);
  EXPECT_NO_THROW(generator.set_tenants(workload::parse_tenant_mixes("a,write=0.5;b")));
}

TEST(MultiTenant, RunRecordsPerTenantLatencyAndFairness) {
  const core::RunResult result =
      run_small(core::SystemKind::kEqualMaxCredits, 0.0,
                "fg,share=0.7,fanout=fixed:1;bg,share=0.3,fanout=fixed:24,write=0.2");
  ASSERT_EQ(result.tenants.size(), 2u);
  EXPECT_EQ(result.tenants[0].name, "fg");
  EXPECT_EQ(result.tenants[1].name, "bg");
  EXPECT_EQ(result.tenants[0].tasks_completed + result.tenants[1].tasks_completed,
            result.tasks_completed);
  EXPECT_EQ(result.tenants[0].tasks_measured + result.tenants[1].tasks_measured,
            result.tasks_measured);
  EXPECT_GT(result.tenants[0].tasks_measured, 0u);
  EXPECT_GT(result.tenants[1].tasks_measured, 0u);
  // Only the bg tenant writes.
  EXPECT_GT(result.write_requests_acked, 0u);
  // Fairness headline: high-fanout bg tasks are slower, ratio > 1.
  EXPECT_GT(result.tenant_p99_ratio, 1.0);
}

TEST(MultiTenant, SingleTenantRunsCarryNoTenantState) {
  const core::RunResult result = run_small(core::SystemKind::kEqualMaxCredits, 0.0);
  EXPECT_TRUE(result.tenants.empty());
  EXPECT_DOUBLE_EQ(result.tenant_p99_ratio, 0.0);
}

// ---------------------------------------------------------------------------
// Config conflicts (the did-you-mean-style fail-fast path)

core::ScenarioConfig config_from(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "brbsim");
  const util::Flags flags(static_cast<int>(argv.size()), argv.data());
  cli::validate_flags(flags);
  return cli::config_from_flags(flags);
}

TEST(ConfigConflicts, TraceExcludesGeneratorSideSpecs) {
  EXPECT_THROW(config_from({"--trace=t.trace", "--arrivals=diurnal:0.5:1.5:60"}),
               std::invalid_argument);
  EXPECT_THROW(config_from({"--trace=t.trace", "--write-fraction=0.2"}), std::invalid_argument);
  EXPECT_THROW(config_from({"--trace=t.trace", "--tenants=a;b"}), std::invalid_argument);
  EXPECT_NO_THROW(config_from({"--trace=t.trace"}));
}

TEST(ConfigConflicts, PacedExcludesArrivalSpec) {
  EXPECT_THROW(config_from({"--paced", "--arrivals=diurnal:0.5:1.5:60"}),
               std::invalid_argument);
  EXPECT_NO_THROW(config_from({"--arrivals=diurnal:0.5:1.5:60"}));
}

TEST(ConfigConflicts, ClusterProfileExcludesScalarOverrides) {
  EXPECT_THROW(config_from({"--cluster=hetero:2x4x3500,1x8x7000", "--servers=5"}),
               std::invalid_argument);
  EXPECT_THROW(config_from({"--cluster=hetero:2x4x3500", "--cores=8"}), std::invalid_argument);
  EXPECT_THROW(config_from({"--cluster=hetero:2x4x3500", "--rate=1000"}), std::invalid_argument);
  const core::ScenarioConfig config = config_from({"--cluster=hetero:2x4x3500,1x8x7000"});
  EXPECT_EQ(config.cluster.num_servers, 3u);
  EXPECT_TRUE(config.cluster.heterogeneous());
}

TEST(ConfigConflicts, NewFlagsAreKnownToValidation) {
  EXPECT_NO_THROW(config_from({"--write-fraction=0.1", "--tenants=a;b",
                               "--arrivals=steps:1,2:10", "--cluster=hetero:2x4x3500"}));
  // A typo'd new flag still gets the did-you-mean treatment.
  const char* argv[] = {"brbsim", "--write-fractoin=0.1"};
  const util::Flags flags(2, argv);
  try {
    cli::validate_flags(flags);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean --write-fraction"), std::string::npos)
        << e.what();
  }
}

TEST(ConfigConflicts, RunScenarioRejectsOverrideTasksWithNewSpecs) {
  const std::vector<workload::TaskSpec> tasks(1);
  core::ScenarioConfig config;
  config.tasks_override = &tasks;
  config.write_fraction = 0.5;
  EXPECT_THROW(core::run_scenario(config), std::invalid_argument);
  config.write_fraction = 0.0;
  config.tenant_spec = "a;b";
  EXPECT_THROW(core::run_scenario(config), std::invalid_argument);
  config.tenant_spec.clear();
  config.arrival_spec = "diurnal:0.5:1.5:60";
  EXPECT_THROW(core::run_scenario(config), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Thread-count determinism of every new scenario's artifacts

TEST(DiversityDeterminism, NewScenarioReportsByteIdenticalAcrossWorkerCounts) {
  const char* argv[] = {"brbsim", "--tasks=800", "--servers=5", "--clients=6",
                        "--systems=equalmax-credits"};
  const util::Flags flags(5, argv);
  // hetero-servers rejects --servers (the profile fixes the fleet), so
  // it gets its own flag set with a small mixed fleet.
  const char* hetero_argv[] = {"brbsim", "--tasks=800", "--clients=6",
                               "--systems=equalmax-credits",
                               "--cluster=hetero:3x2x3500,2x4x7000"};
  const util::Flags hetero_flags(5, hetero_argv);
  const std::vector<std::uint64_t> seeds = {1, 2};

  for (const char* name :
       {"hetero-servers", "diurnal", "write-heavy", "multi-tenant", "replication-skew"}) {
    const cli::ScenarioSpec* scenario = cli::find_scenario(name);
    ASSERT_NE(scenario, nullptr) << name;
    const bool hetero = std::string(name) == "hetero-servers";
    const util::Flags& scenario_flags = hetero ? hetero_flags : flags;
    const core::ScenarioConfig scenario_base = cli::config_from_flags(scenario_flags);
    const std::vector<cli::ExperimentCase> cases = scenario->expand(scenario_base, scenario_flags);
    ASSERT_FALSE(cases.empty()) << name;

    std::vector<std::string> dumps;
    for (const std::size_t max_threads : {std::size_t{1}, std::size_t{2}}) {
      core::RunSeedsOptions options;
      options.max_threads = max_threads;
      std::vector<cli::CaseResult> results;
      for (const cli::ExperimentCase& experiment : cases) {
        core::AggregateResult aggregate = core::run_seeds(experiment.config, seeds, options);
        results.push_back({experiment, std::move(aggregate)});
      }
      // Wall-clock time lives in the trailing "timing" object; drop it
      // and demand byte-identical artifacts across thread counts.
      stats::Json doc = cli::report_json(name, scenario_base, seeds, results);
      doc.erase("timing");
      dumps.push_back(doc.dump_string());
    }
    EXPECT_EQ(dumps[0], dumps[1]) << name;
  }
}

}  // namespace
}  // namespace brb
