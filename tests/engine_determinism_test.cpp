// Regression tests for the dense-ID engine refactor: thread-count
// determinism of artifacts, handle-based O(log n) event cancellation,
// and the pooled-callback fallback path of the allocation-free event
// loop.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "cli/driver.hpp"
#include "core/scenario.hpp"
#include "ctrl/replica_policy.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/small_fn.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace brb {
namespace {

using sim::EventId;
using sim::EventQueue;
using sim::SmallFn;
using sim::Time;

// ---------------------------------------------------------------------------
// EventQueue cancellation (heap-position handles)

TEST(EventQueueCancel, HeavyChurnKeepsOrderAndSize) {
  util::Rng rng(7);
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 20'000; ++i) {
    ids.push_back(q.push(Time::nanos(rng.uniform_int(0, 1'000'000)), [] {}));
  }
  // Cancel every other event, in a scrambled order.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < ids.size(); i += 2) order.push_back(i);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[static_cast<std::size_t>(rng.uniform_int(
                                0, static_cast<std::int64_t>(i) - 1))]);
  }
  for (const std::size_t i : order) ASSERT_TRUE(q.cancel(ids[i]));
  EXPECT_EQ(q.size(), ids.size() / 2);

  Time last = Time::zero();
  std::size_t popped = 0;
  while (auto e = q.pop()) {
    ASSERT_GE(e->when, last);
    last = e->when;
    ++popped;
  }
  EXPECT_EQ(popped, ids.size() / 2);
}

TEST(EventQueueCancel, SizeDropsImmediatelyNoTombstones) {
  // The seed-era queue kept cancelled events as tombstones until they
  // reached the top; the handle-based queue unlinks them eagerly, so
  // size() and pop order agree at every step.
  EventQueue q;
  const EventId a = q.push(Time::micros(1), [] {});
  const EventId b = q.push(Time::micros(2), [] {});
  const EventId c = q.push(Time::micros(3), [] {});
  EXPECT_TRUE(q.cancel(b));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  ASSERT_TRUE(q.peek_time().has_value());
  EXPECT_EQ(*q.peek_time(), Time::micros(3));
  EXPECT_TRUE(q.cancel(c));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueueCancel, StaleIdsRejectedAfterSlotReuse) {
  // Generation validation: an executed event's id must not cancel a
  // later event that happens to recycle the same slot.
  EventQueue q;
  const EventId first = q.push(Time::micros(1), [] {});
  ASSERT_TRUE(q.pop().has_value());  // slot returns to the freelist
  int fired = 0;
  q.push(Time::micros(2), [&] { ++fired; });  // likely reuses the slot
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.size(), 1u);
  auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  e->fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueCancel, CancelledIdCannotCancelTwiceAcrossReuse) {
  EventQueue q;
  const EventId id = q.push(Time::micros(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  q.push(Time::micros(2), [] {});  // reuses the slot
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueCancel, InterleavedWithSimulatorRun) {
  sim::Simulator simulator;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(simulator.schedule_at(Time::micros(10 + i), [&fired, i] { fired.push_back(i); }));
  }
  simulator.schedule_at(Time::micros(5), [&] {
    for (int i = 0; i < 100; i += 2) EXPECT_TRUE(simulator.cancel(ids[static_cast<std::size_t>(i)]));
  });
  simulator.run();
  ASSERT_EQ(fired.size(), 50u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], static_cast<int>(2 * i + 1));
  }
}

// ---------------------------------------------------------------------------
// SmallFn storage tiers

TEST(SmallFnStorage, SmallCapturesStayInline) {
  int hits = 0;
  std::array<char, 32> small{};
  small[0] = 42;
  SmallFn fn([&hits, small] { hits += small[0]; });
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(hits, 42);
}

TEST(SmallFnStorage, LargeCapturesUsePooledFallbackAndReuseBlocks) {
  struct Big {
    std::array<char, SmallFn::kInlineCapacity + 8> payload;
  };
  Big big{};
  big.payload[0] = 1;

  SmallFn::trim_pool();
  const auto before = SmallFn::pool_stats();

  int runs = 0;
  {
    SmallFn fn([&runs, big] { runs += big.payload[0]; });
    EXPECT_FALSE(fn.is_inline());
    fn();
  }
  const auto after_first = SmallFn::pool_stats();
  EXPECT_EQ(after_first.pooled_constructs, before.pooled_constructs + 1);
  EXPECT_EQ(after_first.pool_misses, before.pool_misses + 1);

  // The block returned to the freelist: the next oversize capture must
  // reuse it instead of allocating (the steady-state guarantee).
  {
    SmallFn fn([&runs, big] { runs += big.payload[0]; });
    fn();
  }
  const auto after_second = SmallFn::pool_stats();
  EXPECT_EQ(after_second.pooled_constructs, before.pooled_constructs + 2);
  EXPECT_EQ(after_second.pool_misses, after_first.pool_misses);
  EXPECT_EQ(after_second.pool_hits, after_first.pool_hits + 1);
  EXPECT_EQ(runs, 2);
}

TEST(SmallFnStorage, PooledCallbacksRunThroughTheEventQueue) {
  EventQueue q;
  std::array<char, SmallFn::kPooledBlockSize / 2> blob{};
  blob[7] = 9;
  int seen = 0;
  q.push(Time::micros(1), [blob, &seen] { seen = blob[7]; });
  auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->fn.is_inline());
  e->fn();
  EXPECT_EQ(seen, 9);
}

TEST(SmallFnStorage, OversizeCapturesStillWork) {
  // Beyond the pooled block size: plain heap allocation, same behavior.
  std::array<char, SmallFn::kPooledBlockSize + 64> huge{};
  huge[1] = 5;
  int seen = 0;
  SmallFn fn([huge, &seen] { seen = huge[1]; });
  EXPECT_FALSE(fn.is_inline());
  SmallFn moved = std::move(fn);
  moved();
  EXPECT_EQ(seen, 5);
}

// ---------------------------------------------------------------------------
// Thread-count determinism of driver artifacts

TEST(ThreadDeterminism, ReportJsonByteIdenticalAcrossWorkerCounts) {
  core::ScenarioConfig config;
  config.system = core::SystemKind::kEqualMaxCredits;
  config.num_tasks = 4000;
  config.cluster.num_servers = 5;
  config.num_clients = 6;
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};

  core::RunSeedsOptions serial;
  serial.max_threads = 1;
  core::RunSeedsOptions threaded;
  threaded.max_threads = 0;  // one worker per seed
  core::RunSeedsOptions capped;
  capped.max_threads = 3;  // strided assignment exercises the cap path

  std::vector<core::AggregateResult> results;
  results.push_back(core::run_seeds(config, seeds, serial));
  results.push_back(core::run_seeds(config, seeds, threaded));
  results.push_back(core::run_seeds(config, seeds, capped));

  // Wall-clock time is quarantined in the artifact's trailing "timing"
  // object; drop it, then demand byte-identical serialized artifacts.
  std::vector<std::string> dumps;
  for (core::AggregateResult& result : results) {
    cli::CaseResult case_result;
    case_result.spec = {"determinism", config};
    case_result.aggregate = std::move(result);
    std::vector<cli::CaseResult> cases;
    cases.push_back(std::move(case_result));
    stats::Json doc = cli::report_json("determinism", config, seeds, cases);
    doc.erase("timing");
    dumps.push_back(doc.dump_string());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

TEST(ThreadDeterminism, PolicyShootoutSubstrateByteIdenticalAcrossWorkerCounts) {
  // The policy-shootout substrate (FIFO direct dispatch + a scored
  // replica policy) drives the control-plane feedback path hardest:
  // staged SignalTable batches, column flushes on every selection, and
  // dense same-timestamp delivery batches through the timing wheel.
  // Worker count must still not leak into the artifact.
  core::ScenarioConfig config;
  config.system = core::SystemKind::kFifoDirect;
  config.policy_spec = ctrl::canonical_policy_name("c3-noderate");
  config.num_tasks = 3000;
  config.cluster.num_servers = 5;
  config.num_clients = 6;
  const std::vector<std::uint64_t> seeds = {11, 12, 13};

  core::RunSeedsOptions serial;
  serial.max_threads = 1;
  core::RunSeedsOptions threaded;
  threaded.max_threads = 0;  // one worker per seed

  std::vector<core::AggregateResult> results;
  results.push_back(core::run_seeds(config, seeds, serial));
  results.push_back(core::run_seeds(config, seeds, threaded));

  std::vector<std::string> dumps;
  for (core::AggregateResult& result : results) {
    cli::CaseResult case_result;
    case_result.spec = {"shootout-determinism", config};
    case_result.aggregate = std::move(result);
    std::vector<cli::CaseResult> cases;
    cases.push_back(std::move(case_result));
    stats::Json doc = cli::report_json("shootout-determinism", config, seeds, cases);
    doc.erase("timing");
    dumps.push_back(doc.dump_string());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(ThreadDeterminism, BatchedArrivalPumpByteIdenticalAcrossWorkerCounts) {
  // The block-based arrival pump pregenerates 256-task TaskBlocks
  // (batched sampling, slab-backed requests) and each arrival submits
  // straight from the block. Multi-tenant + write traffic drives every
  // draw the generator makes (tenant, client, write decision, write
  // sizes, per-tenant fan-out/keys) through fill_block; worker count
  // must still not leak into the artifact.
  core::ScenarioConfig config;
  config.system = core::SystemKind::kEqualMaxCredits;
  config.num_tasks = 4000;
  config.cluster.num_servers = 5;
  config.num_clients = 6;
  config.write_fraction = 0.2;
  config.tenant_spec = "fg,share=0.7,fanout=fixed:2;bg,share=0.3,fanout=fixed:16,write=0.5";
  const std::vector<std::uint64_t> seeds = {21, 22, 23};

  core::RunSeedsOptions serial;
  serial.max_threads = 1;
  core::RunSeedsOptions threaded;
  threaded.max_threads = 0;  // one worker per seed

  std::vector<core::AggregateResult> results;
  results.push_back(core::run_seeds(config, seeds, serial));
  results.push_back(core::run_seeds(config, seeds, threaded));

  std::vector<std::string> dumps;
  for (core::AggregateResult& result : results) {
    cli::CaseResult case_result;
    case_result.spec = {"pump-determinism", config};
    case_result.aggregate = std::move(result);
    std::vector<cli::CaseResult> cases;
    cases.push_back(std::move(case_result));
    stats::Json doc = cli::report_json("pump-determinism", config, seeds, cases);
    doc.erase("timing");
    dumps.push_back(doc.dump_string());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

// ---------------------------------------------------------------------------
// Driver flag validation

TEST(FlagValidation, UnknownFlagRejectedWithSuggestion) {
  const char* argv[] = {"brbsim", "--taks=100"};
  const util::Flags flags(2, argv);
  try {
    cli::validate_flags(flags);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("--taks"), std::string::npos) << message;
    EXPECT_NE(message.find("did you mean --tasks"), std::string::npos) << message;
  }
}

TEST(FlagValidation, UnknownFlagWithoutNeighborStillRejected) {
  const char* argv[] = {"brbsim", "--complete-gibberish-xyz=1"};
  const util::Flags flags(2, argv);
  EXPECT_THROW(cli::validate_flags(flags), std::invalid_argument);
}

TEST(FlagValidation, KnownFlagsPass) {
  const char* argv[] = {"brbsim", "--tasks=10", "--scenario=paper", "--threads=2"};
  const util::Flags flags(4, argv);
  EXPECT_NO_THROW(cli::validate_flags(flags));
}

TEST(FlagValidation, EditDistanceBasics) {
  EXPECT_EQ(util::edit_distance("tasks", "tasks"), 0u);
  EXPECT_EQ(util::edit_distance("taks", "tasks"), 1u);
  EXPECT_EQ(util::edit_distance("", "abc"), 3u);
  const auto hit = util::closest_name("serers", {"servers", "seeds", "series-x"});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "servers");
  EXPECT_FALSE(util::closest_name("zzzz", {"servers", "seeds"}).has_value());
}

}  // namespace
}  // namespace brb
