// brblint self-test fixture: BRB-D02 must fire on each banned
// nondeterminism source (one per line below).
// expect: BRB-D02=8
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <set>
#include <thread>
#include <vector>

namespace fixture {

double naughty() {
  const int r = std::rand();
  const auto now = std::chrono::steady_clock::now();
  const char* env = std::getenv("FIXTURE");
  std::this_thread::yield();
  const auto key = reinterpret_cast<std::uintptr_t>(env);
  return static_cast<double>(r) + static_cast<double>(key) +
         std::chrono::duration<double>(now.time_since_epoch()).count();
}

struct Slot {
  int value = 0;
};

// Pointer-keyed containers iterate in address order (ASLR): dense
// indices are the deterministic key.
int pointer_keyed(Slot* a, Slot* b) {
  std::map<Slot*, int> by_slot;
  std::set<const Slot*> seen;
  by_slot[a] = 1;
  seen.insert(b);
  int total = 0;
  for (const auto& [slot, value] : by_slot) total += value + slot->value;
  return total + static_cast<int>(seen.size());
}

// Per-thread scratch whose stale content is readable on reuse: which
// thread (and therefore which leftover values) serves a call varies
// across runs.
int leaky_scratch(int i) {
  thread_local std::vector<int> scratch;
  if (scratch.empty()) scratch.resize(16);
  return scratch[static_cast<std::size_t>(i) % scratch.size()];
}

}  // namespace fixture
