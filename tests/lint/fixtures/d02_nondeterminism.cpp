// brblint self-test fixture: BRB-D02 must fire on each banned
// nondeterminism source (one per line below).
// expect: BRB-D02=5
#include <chrono>
#include <cstdlib>
#include <thread>

namespace fixture {

double naughty() {
  const int r = std::rand();
  const auto now = std::chrono::steady_clock::now();
  const char* env = std::getenv("FIXTURE");
  std::this_thread::yield();
  const auto key = reinterpret_cast<std::uintptr_t>(env);
  return static_cast<double>(r) + static_cast<double>(key) +
         std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace fixture
