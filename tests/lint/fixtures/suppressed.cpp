// brblint self-test fixture: every violation below carries an inline
// suppression, so the file must produce zero findings (and exit 0).
// expect: suppressed=4
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <unordered_map>
#include <vector>

namespace fixture {

// brblint:allow(BRB-D01): lookup-only, never iterated
std::unordered_map<std::uint32_t, std::uint64_t> overrides;

const char* env_config() {
  return std::getenv("FIXTURE");  // brblint:allow(BRB-D02): declared run configuration
}

double merge_shards_sanctioned(double a, double b) {
  double total = a;
  // brblint:allow(BRB-D03): two fixed operands, order pinned by caller
  total += b;
  return total;
}

double disjoint_slots() {
  std::vector<double> slots(4, 0.0);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    // brblint:allow(BRB-R01): disjoint pre-sized slots, joined before read
    workers.emplace_back([&, w] {
      slots[static_cast<std::size_t>(w)] = 1.0;
    });
  }
  for (auto& worker : workers) worker.join();
  double total = 0.0;
  for (const double s : slots) total += s;
  return total;
}

}  // namespace fixture
