// brblint self-test fixture: BRB-R01 must fire on a thread-worker
// lambda mutating by-reference captured state with no synchronization —
// including mutation hidden behind scheduler entry points (push/cancel
// relink intrusive wheel slot lists even though no assignment operator
// appears in the lambda body) and behind the DispatchPlan executor
// callbacks (dispatch_plan/issue_copy/hedge_fire and the
// DispatchEndpoint on_send/on_response/on_cancel feedback hooks, which
// rewrite per-request slot state and SignalTable accounting) and behind
// the workload batch entry points (fill_block/sample_batch/
// next_gap_batch advance the shared generator's RNG stream and rewrite
// the TaskBlock slab).
// expect: BRB-R01=4
#include <cstdint>
#include <thread>
#include <vector>

namespace fixture {

std::uint64_t race() {
  std::uint64_t hits = 0;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      hits += 1;  // unsynchronized read-modify-write
    });
  }
  for (auto& worker : workers) worker.join();
  return hits;
}

struct FakeQueue {
  void push(std::uint64_t when);
  void cancel(std::uint64_t id);
};

void race_through_scheduler(FakeQueue& queue) {
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      queue.push(static_cast<std::uint64_t>(w));  // mutates slot lists inside
    });
  }
  for (auto& worker : workers) worker.join();
}

struct FakeEndpoint {
  void on_cancel(std::uint32_t target, double expected_cost);
};

void race_through_dispatch_executor(FakeEndpoint& endpoint) {
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      endpoint.on_cancel(static_cast<std::uint32_t>(w), 1.0);  // SignalTable accounting inside
    });
  }
  for (auto& worker : workers) worker.join();
}

struct FakeGenerator {
  void fill_block(int& block, std::uint64_t max_tasks);
};

void race_through_batch_generation(FakeGenerator& gen, int& block) {
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      gen.fill_block(block, 256);  // advances shared RNG + rewrites the slab
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace fixture
