// brblint self-test fixture: BRB-R01 must fire on a thread-worker
// lambda mutating by-reference captured state with no synchronization.
// expect: BRB-R01=1
#include <cstdint>
#include <thread>
#include <vector>

namespace fixture {

std::uint64_t race() {
  std::uint64_t hits = 0;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      hits += 1;  // unsynchronized read-modify-write
    });
  }
  for (auto& worker : workers) worker.join();
  return hits;
}

}  // namespace fixture
