// brblint self-test fixture: BRB-R01 must fire on a thread-worker
// lambda mutating by-reference captured state with no synchronization —
// including mutation hidden behind scheduler entry points (push/cancel
// relink intrusive wheel slot lists even though no assignment operator
// appears in the lambda body).
// expect: BRB-R01=2
#include <cstdint>
#include <thread>
#include <vector>

namespace fixture {

std::uint64_t race() {
  std::uint64_t hits = 0;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      hits += 1;  // unsynchronized read-modify-write
    });
  }
  for (auto& worker : workers) worker.join();
  return hits;
}

struct FakeQueue {
  void push(std::uint64_t when);
  void cancel(std::uint64_t id);
};

void race_through_scheduler(FakeQueue& queue) {
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      queue.push(static_cast<std::uint64_t>(w));  // mutates slot lists inside
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace fixture
