// brblint self-test fixture: deterministic code — no findings expected.
// expect:
#include <cstdint>
#include <map>
#include <vector>

namespace fixture {

std::uint64_t sum_values(const std::map<std::uint32_t, std::uint64_t>& table) {
  std::uint64_t total = 0;
  for (const auto& [key, value] : table) total += value;  // ordered traversal
  return total;
}

double run_mean(const std::vector<double>& samples) {
  double total = 0.0;
  for (const double s : samples) total += s;
  return samples.empty() ? 0.0 : total / static_cast<double>(samples.size());
}

}  // namespace fixture
