// brblint self-test fixture: BRB-D03 must fire on floating-point
// accumulation inside a merge-named function, but not inside the
// sanctioned deterministic-reduction helpers or plain per-run code.
// expect: BRB-D03=1
#include <vector>

namespace fixture {

double merge_shards(const std::vector<double>& shard_means) {
  double total = 0.0;
  for (const double mean : shard_means) total += mean;  // worker-order hazard
  return total;
}

// Sanctioned helper name: must NOT fire.
double accumulate_summary(const std::vector<double>& values) {
  double total = 0.0;
  for (const double v : values) total += v;
  return total;
}

// Not a merge path (per-run accumulation): must NOT fire.
double run_mean(const std::vector<double>& samples) {
  double total = 0.0;
  for (const double s : samples) total += s;
  return samples.empty() ? 0.0 : total / static_cast<double>(samples.size());
}

}  // namespace fixture
