// brblint self-test fixture: BRB-D04 must fire on raw integers named
// like dense IDs at API boundaries, and stay quiet on the typed forms.
// expect: BRB-D04=2
#include <cstdint>

namespace store {
using ServerId = std::uint32_t;
using ClientId = std::uint32_t;
}  // namespace store

namespace fixture {

double capacity_of(std::uint32_t server_id);
void bind(int client);

// Typed boundary: must NOT fire.
double rate_of(store::ServerId server);
void rebind(store::ClientId client);

}  // namespace fixture
