// brblint self-test fixture: BRB-D01 must fire on unordered containers.
// expect: BRB-D01=2
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

std::uint64_t sum_values(const std::unordered_map<std::uint32_t, std::uint64_t>& table) {
  std::uint64_t total = 0;
  for (const auto& [key, value] : table) total += value;  // iteration order leaks
  return total;
}

std::unordered_set<std::uint32_t> seen;

}  // namespace fixture
