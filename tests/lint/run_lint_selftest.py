#!/usr/bin/env python3
"""brblint self-test: runs the linter over the seeded fixture files and
asserts exact per-check finding counts, suppression counts, and exit
codes. Each fixture declares its expectations in a header comment:

    // expect: BRB-D01=2            (findings per check ID)
    // expect: suppressed=4         (suppression count, optional)
    // expect:                      (clean file: no findings)

Also exercises the baseline workflow end to end: --update-baseline on a
dirty fixture must make the follow-up run exit 0 with zero NEW findings.

Exit 0 = all assertions hold; 1 = mismatch (details on stderr).
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

CHECK_IDS = ("BRB-D01", "BRB-D02", "BRB-D03", "BRB-D04", "BRB-R01")

_EXPECT = re.compile(r"^//\s*expect:\s*(.*)$")
_FINDING = re.compile(r"^.+?:\d+: \[(BRB-[A-Z0-9]+)\] ")
_SUMMARY = re.compile(
    r"^brblint: (\d+) new finding\(s\), (\d+) baselined, (\d+) suppressed;")


def parse_expectations(path):
    expected = {check: 0 for check in CHECK_IDS}
    suppressed = None
    saw_expect = False
    with open(path) as f:
        for line in f:
            m = _EXPECT.match(line.strip())
            if not m:
                continue
            saw_expect = True
            for term in m.group(1).split():
                key, _, value = term.partition("=")
                if key == "suppressed":
                    suppressed = int(value)
                elif key in expected:
                    expected[key] = int(value)
                else:
                    raise SystemExit("%s: unknown expectation '%s'" % (path, term))
    if not saw_expect:
        raise SystemExit("%s: fixture has no '// expect:' header" % path)
    return expected, suppressed


def run_brblint(brblint, root, target, extra=()):
    cmd = [sys.executable, brblint, "--root", root, "--mode=regex",
           "--no-baseline", *extra, target]
    return subprocess.run(cmd, capture_output=True, text=True)


def count_findings(stdout):
    counts = {check: 0 for check in CHECK_IDS}
    suppressed = 0
    for line in stdout.splitlines():
        m = _FINDING.match(line)
        if m:
            counts[m.group(1)] = counts.get(m.group(1), 0) + 1
        m = _SUMMARY.match(line)
        if m:
            suppressed = int(m.group(3))
    return counts, suppressed


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--brblint", required=True)
    parser.add_argument("--fixtures", required=True)
    parser.add_argument("--root", required=True)
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    fixtures = sorted(f for f in os.listdir(args.fixtures) if f.endswith(".cpp"))
    if not fixtures:
        print("no fixtures under %s" % args.fixtures, file=sys.stderr)
        return 1

    failures = []
    dirty_fixture = None
    for name in fixtures:
        full = os.path.join(os.path.abspath(args.fixtures), name)
        rel = os.path.relpath(full, root)
        expected, expected_suppressed = parse_expectations(full)
        proc = run_brblint(args.brblint, root, rel)
        counts, suppressed = count_findings(proc.stdout)
        want_exit = 1 if any(expected.values()) else 0
        if any(expected.values()) and dirty_fixture is None:
            dirty_fixture = rel
        if proc.returncode != want_exit:
            failures.append("%s: exit %d, want %d\n%s%s"
                            % (name, proc.returncode, want_exit, proc.stdout, proc.stderr))
        for check in CHECK_IDS:
            if counts[check] != expected[check]:
                failures.append("%s: %s fired %d time(s), want %d\n%s"
                                % (name, check, counts[check], expected[check], proc.stdout))
        if expected_suppressed is not None and suppressed != expected_suppressed:
            failures.append("%s: %d suppression(s), want %d\n%s"
                            % (name, suppressed, expected_suppressed, proc.stdout))

    # Baseline round trip: accepting current findings must silence the rerun.
    with tempfile.TemporaryDirectory() as tmp:
        baseline = os.path.join(tmp, "baseline.txt")
        first = subprocess.run(
            [sys.executable, args.brblint, "--root", root, "--mode=regex",
             "--baseline", baseline, "--update-baseline", dirty_fixture],
            capture_output=True, text=True)
        second = subprocess.run(
            [sys.executable, args.brblint, "--root", root, "--mode=regex",
             "--baseline", baseline, dirty_fixture],
            capture_output=True, text=True)
        if first.returncode != 0:
            failures.append("baseline update failed (exit %d)\n%s%s"
                            % (first.returncode, first.stdout, first.stderr))
        if second.returncode != 0 or "0 new finding(s)" not in second.stdout:
            failures.append("baselined rerun not clean (exit %d)\n%s%s"
                            % (second.returncode, second.stdout, second.stderr))

    if failures:
        for failure in failures:
            print("FAIL %s" % failure, file=sys.stderr)
        print("%d/%d fixture assertion group(s) failed"
              % (len(failures), len(fixtures)), file=sys.stderr)
        return 1
    print("brblint self-test: %d fixture(s) + baseline round trip ok" % len(fixtures))
    return 0


if __name__ == "__main__":
    sys.exit(main())
