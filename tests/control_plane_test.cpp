// Control-plane tests: the unified SignalTable, the replica/admission
// policy registries, the PolicyRuntime (per-tenant binding + mid-run
// switching), and the golden-artifact equivalence suite asserting that
// the runtime path reproduces the legacy wiring byte-for-byte.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cli/driver.hpp"
#include "cli/sweep_plan.hpp"
#include "core/scenario.hpp"
#include "ctrl/admission.hpp"
#include "ctrl/policy_runtime.hpp"
#include "ctrl/replica_policy.hpp"
#include "ctrl/signal_table.hpp"
#include "ctrl/sparse_signal_table.hpp"
#include "sim/simulator.hpp"
#include "stats/artifact.hpp"
#include "util/ewma.hpp"
#include "util/rng.hpp"

namespace brb {
namespace {

using sim::Duration;
using sim::Time;

store::ServerFeedback feedback(std::uint32_t queue, double rate) {
  store::ServerFeedback f;
  f.queue_length = queue;
  f.service_rate = rate;
  f.service_time = Duration::micros(300);
  return f;
}

// ---------------------------------------------------------------------------
// SignalTable

TEST(SignalTable, TracksOutstandingAndPendingCost) {
  ctrl::SignalTable table;
  table.on_send(3, Duration::micros(500));
  table.on_send(3, Duration::micros(200));
  table.on_send(5, Duration::micros(100));
  EXPECT_EQ(table.outstanding(3), 2u);
  EXPECT_EQ(table.pending_cost(3), Duration::micros(700));
  EXPECT_EQ(table.outstanding(5), 1u);

  table.on_response(3, feedback(2, 14'000), Duration::micros(400), Duration::micros(500));
  EXPECT_EQ(table.outstanding(3), 1u);
  EXPECT_EQ(table.pending_cost(3), Duration::micros(200));

  // Duplicate releases clamp instead of underflowing.
  table.on_response(3, feedback(2, 14'000), Duration::micros(400), Duration::micros(500));
  table.on_response(3, feedback(2, 14'000), Duration::micros(400), Duration::micros(500));
  EXPECT_EQ(table.outstanding(3), 0u);
  EXPECT_EQ(table.pending_cost(3), Duration::zero());
}

TEST(SignalTable, EwmaSeedsThenBlends) {
  ctrl::SignalTable table(ctrl::SignalTableConfig{0.5});
  table.on_response(1, feedback(4, 10'000), Duration::micros(1000), Duration::zero());
  const ctrl::SignalTable::Signals& seeded = table.of(1);
  EXPECT_TRUE(seeded.seen);
  EXPECT_DOUBLE_EQ(seeded.ewma_response_ns, 1'000'000.0);
  EXPECT_DOUBLE_EQ(seeded.ewma_queue, 4.0);
  EXPECT_DOUBLE_EQ(seeded.ewma_service_time_ns, 1e9 / 10'000.0);

  table.on_response(1, feedback(8, 10'000), Duration::micros(2000), Duration::zero());
  const ctrl::SignalTable::Signals& blended = table.of(1);
  EXPECT_DOUBLE_EQ(blended.ewma_response_ns,
                   util::ewma_update(1'000'000.0, 0.5, 2'000'000.0));
  EXPECT_DOUBLE_EQ(blended.ewma_queue, util::ewma_update(4.0, 0.5, 8.0));
  EXPECT_EQ(blended.last_queue_length, 8u);
}

TEST(SignalTable, UnseenServersReadAsZero) {
  ctrl::SignalTable table;
  EXPECT_EQ(table.outstanding(42), 0u);
  EXPECT_EQ(table.pending_cost(42), Duration::zero());
  EXPECT_FALSE(table.of(42).seen);
  EXPECT_EQ(table.size(), 0u);
}

TEST(SignalTable, AdmissionMirrors) {
  ctrl::SignalTable table;
  table.set_credit_balance(2, 7.5);
  table.set_rate_cap(2, 1234.0);
  EXPECT_DOUBLE_EQ(table.credit_balance(2), 7.5);
  EXPECT_DOUBLE_EQ(table.of(2).rate_cap, 1234.0);
}

TEST(SignalTable, RejectsBadAlpha) {
  EXPECT_THROW(ctrl::SignalTable(ctrl::SignalTableConfig{0.0}), std::invalid_argument);
  EXPECT_THROW(ctrl::SignalTable(ctrl::SignalTableConfig{1.5}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SparseSignalTable — the million-client backing store

TEST(SparseSignalTable, BitIdenticalToDenseWhenCapCoversFleet) {
  // The differential the sparse design promises (see
  // ctrl/sparse_signal_table.hpp): with a cap above the fleet size
  // nothing ever evicts, and every observable must match the dense
  // columns bit for bit under an arbitrary interleaved op history.
  ctrl::SignalTable dense;
  ctrl::SignalTableConfig sparse_config;
  sparse_config.sparse = true;
  sparse_config.sparse_cap = 64;  // fleet is 16 servers
  sparse_config.sparse_group_size = 4;
  ctrl::SignalTable sparse(sparse_config);

  util::Rng history(41);
  const std::uint32_t fleet = 16;
  for (int round = 0; round < 2000; ++round) {
    const store::ServerId server = history.uniform_u64_below(fleet);
    const Duration cost = Duration::micros(100 + 10 * (round % 11));
    switch (history.uniform_u64_below(5)) {
      case 0:
        dense.on_send(server, cost);
        sparse.on_send(server, cost);
        break;
      case 1: {
        const store::ServerFeedback fb =
            feedback(round % 7, 5'000.0 + 250.0 * static_cast<double>(round % 5));
        const Duration rtt = Duration::micros(200 + 30 * (round % 13));
        const Time at = Time::nanos(round * 1000);
        dense.on_response(server, fb, rtt, cost, at);
        sparse.on_response(server, fb, rtt, cost, at);
        break;
      }
      case 2:
        dense.on_cancel(server, cost);
        sparse.on_cancel(server, cost);
        break;
      case 3:
        dense.set_credit_balance(server, static_cast<double>(round % 9));
        sparse.set_credit_balance(server, static_cast<double>(round % 9));
        break;
      default:
        dense.set_rate_cap(server, 100.0 * static_cast<double>(round % 4));
        sparse.set_rate_cap(server, 100.0 * static_cast<double>(round % 4));
        break;
    }
    const store::ServerId probe = history.uniform_u64_below(fleet + 2);  // also unseen
    const ctrl::SignalTable::Signals d = dense.of(probe);
    const ctrl::SignalTable::Signals s = sparse.of(probe);
    ASSERT_EQ(d.seen, s.seen) << "round " << round;
    ASSERT_EQ(d.outstanding, s.outstanding) << "round " << round;
    ASSERT_EQ(d.pending_cost_ns, s.pending_cost_ns) << "round " << round;
    ASSERT_EQ(d.ewma_response_ns, s.ewma_response_ns) << "round " << round;
    ASSERT_EQ(d.ewma_queue, s.ewma_queue) << "round " << round;
    ASSERT_EQ(d.ewma_service_time_ns, s.ewma_service_time_ns) << "round " << round;
    ASSERT_EQ(d.credit_balance, s.credit_balance) << "round " << round;
    ASSERT_EQ(d.rate_cap, s.rate_cap) << "round " << round;
    ASSERT_EQ(d.last_queue_length, s.last_queue_length) << "round " << round;
    ASSERT_EQ(d.last_service_rate, s.last_service_rate) << "round " << round;
    ASSERT_EQ(d.last_feedback_ns, s.last_feedback_ns) << "round " << round;
  }
  ASSERT_NE(sparse.sparse_store(), nullptr);
  EXPECT_EQ(sparse.sparse_store()->evictions(), 0u);
}

TEST(SparseSignalTable, EvictsLruIntoGroupAggregate) {
  // Cap 4, groups of 4: touching servers 0..7 in order evicts 0..3
  // (the LRU window keeps the last four), and their response EWMAs
  // fold into group 0's running means — the fallback answer for any
  // server of that group the window no longer tracks.
  ctrl::SparseSignalTable table(/*ewma_alpha=*/0.5, /*entry_cap=*/4, /*group_size=*/4);
  double folded_sum = 0.0;
  for (store::ServerId s = 0; s < 8; ++s) {
    const Duration cost = Duration::micros(100);
    table.on_send(s, cost);
    const Duration rtt = Duration::micros(100 * (s + 1));
    table.on_response(s, feedback(2, 10'000.0), rtt, cost,
                      Time::nanos(static_cast<std::int64_t>(s) * 100));
    if (s < 4) folded_sum += static_cast<double>(rtt.count_nanos());
  }
  EXPECT_EQ(table.live_entries(), 4u);
  EXPECT_EQ(table.evictions(), 4u);

  // Live entries answer exactly.
  EXPECT_TRUE(table.seen(7));
  EXPECT_DOUBLE_EQ(table.ewma_response_ns(7), 800'000.0);

  // An evicted pair answers with its group aggregate: seen, EWMAs =
  // group means, counters and mirrors zero, freshness stale.
  const ctrl::SignalTable::Signals evicted = table.of(0);
  EXPECT_TRUE(evicted.seen);
  EXPECT_DOUBLE_EQ(evicted.ewma_response_ns, folded_sum / 4.0);
  EXPECT_EQ(evicted.outstanding, 0u);
  EXPECT_DOUBLE_EQ(evicted.credit_balance, 0.0);
  EXPECT_EQ(evicted.last_feedback_ns, -1);

  // A never-touched server in a group with no history stays zero.
  EXPECT_FALSE(table.of(11).seen);
}

TEST(SparseSignalStore, ScenarioDecisionsIdenticalToDense) {
  // Satellite differential for --signal-store: below the auto-sparse
  // threshold an explicit sparse store (cap covering the fleet) must
  // reproduce the dense run's decision stream bit for bit — including
  // credits systems, which keep the exact dense credits path there.
  for (const core::SystemKind kind :
       {core::SystemKind::kC3, core::SystemKind::kFifoDirect,
        core::SystemKind::kEqualMaxCredits}) {
    core::ScenarioConfig config;
    config.system = kind;
    config.seed = 5;
    config.num_tasks = 3000;
    config.key_spec = "zipf:20000:0.9";
    config.signal_store = "dense";
    const core::RunResult dense = core::run_scenario(config);
    config.signal_store = "sparse:64";  // fleet is 9 servers
    const core::RunResult sparse = core::run_scenario(config);

    EXPECT_FALSE(dense.sparse_signal_store);
    EXPECT_TRUE(sparse.sparse_signal_store) << core::to_string(kind);
    EXPECT_EQ(sparse.signal_evictions, 0u) << core::to_string(kind);
    EXPECT_GT(sparse.signal_entries_live, 0u) << core::to_string(kind);

    EXPECT_EQ(dense.task_latency.percentile(50).count_nanos(),
              sparse.task_latency.percentile(50).count_nanos())
        << core::to_string(kind);
    EXPECT_EQ(dense.task_latency.percentile(99).count_nanos(),
              sparse.task_latency.percentile(99).count_nanos())
        << core::to_string(kind);
    EXPECT_EQ(dense.events_processed, sparse.events_processed) << core::to_string(kind);
    EXPECT_EQ(dense.network_messages, sparse.network_messages) << core::to_string(kind);
    EXPECT_EQ(dense.requests_completed, sparse.requests_completed) << core::to_string(kind);
    EXPECT_EQ(dense.credit_hold_events, sparse.credit_hold_events) << core::to_string(kind);
  }
}

TEST(SparseSignalTable, PinnedEntriesSurviveTheCap) {
  // In-flight accounting and gate mirrors pin an entry: rather than
  // corrupt balances, the soft cap grows past its limit.
  ctrl::SparseSignalTable table(/*ewma_alpha=*/0.5, /*entry_cap=*/2, /*group_size=*/4);
  table.on_send(0, Duration::micros(100));    // pinned: in-flight
  table.set_credit_balance(1, 3.0);           // pinned: gate mirror
  table.on_send(2, Duration::micros(100));    // pinned: in-flight
  EXPECT_EQ(table.live_entries(), 3u);
  EXPECT_EQ(table.evictions(), 0u);
  EXPECT_EQ(table.outstanding(0), 1u);
  EXPECT_DOUBLE_EQ(table.credit_balance(1), 3.0);

  // Releasing the in-flight copy unpins: the next insert evicts it.
  table.on_cancel(0, Duration::micros(100));
  table.on_send(3, Duration::micros(100));
  EXPECT_EQ(table.evictions(), 1u);
  EXPECT_EQ(table.outstanding(0), 0u);
}

// ---------------------------------------------------------------------------
// Replica-policy registry

TEST(ReplicaPolicyRegistry, CanonicalNamesAndAliases) {
  EXPECT_EQ(ctrl::canonical_policy_name("lor"), "least-outstanding");
  EXPECT_EQ(ctrl::canonical_policy_name("rr"), "round-robin");
  EXPECT_EQ(ctrl::canonical_policy_name("2c"), "two-choices");
  EXPECT_EQ(ctrl::canonical_policy_name("p2c"), "two-choices");
  EXPECT_EQ(ctrl::canonical_policy_name("lpc"), "least-pending-cost");
  EXPECT_EQ(ctrl::canonical_policy_name("c3"), "c3");
  EXPECT_EQ(ctrl::canonical_policy_name("c3-noderate"), "c3-noderate");
}

TEST(ReplicaPolicyRegistry, UnknownNameSuggests) {
  try {
    ctrl::canonical_policy_name("two-choice");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("two-choices"), std::string::npos);
  }
}

TEST(ReplicaPolicyRegistry, EveryCatalogNameConstructs) {
  for (const ctrl::ReplicaPolicyInfo& info : ctrl::replica_policy_catalog()) {
    const auto policy = ctrl::make_replica_policy(info.name, {}, util::Rng(1));
    ASSERT_NE(policy, nullptr) << info.name;
    EXPECT_EQ(policy->name(), info.name);
    for (const std::string& alias : info.aliases) {
      EXPECT_EQ(ctrl::make_replica_policy(alias, {}, util::Rng(1))->name(), info.name) << alias;
    }
  }
}

TEST(TwoChoicesPolicy, PrefersLessLoadedOfItsPair) {
  ctrl::SignalTable table;
  ctrl::TwoChoicesPolicy policy{util::Rng(7)};
  // Server 0 is heavily loaded; with two replicas both are always
  // sampled, so the choice must always be server 1.
  for (int i = 0; i < 5; ++i) table.on_send(0, Duration::micros(100));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.select(table, {0, 1}, Duration::zero()), 1u);
  }
  // Singleton replica sets short-circuit.
  EXPECT_EQ(policy.select(table, {0}, Duration::zero()), 0u);
}

TEST(TwoChoicesPolicy, SamplesBothReplicasOverTime) {
  ctrl::SignalTable table;  // all-equal loads: tie-break = lower id of the pair
  ctrl::TwoChoicesPolicy policy{util::Rng(11)};
  int picked[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) ++picked[policy.select(table, {0, 1, 2}, Duration::zero())];
  // Lower ids win ties, but every server must appear as a pair minimum
  // sometimes; server 2 only wins when the pair is {2} alone — never —
  // so expect a strong but not total skew.
  EXPECT_GT(picked[0], picked[1]);
  EXPECT_EQ(picked[2], 0);
  EXPECT_GT(picked[1], 0);
}

// ---------------------------------------------------------------------------
// Admission registry

TEST(AdmissionRegistry, NamesAndErrors) {
  EXPECT_EQ(ctrl::canonical_admission_name("direct"), "direct");
  EXPECT_EQ(ctrl::canonical_admission_name("credits"), "credits");
  try {
    ctrl::canonical_admission_name("cubicrate");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cubic-rate"), std::string::npos);
  }
  // Credits admission needs per-server bootstrap balances.
  ctrl::AdmissionContext bare;
  EXPECT_THROW(ctrl::make_admission_policy("credits", bare), std::invalid_argument);
  EXPECT_EQ(ctrl::make_admission_policy("direct", bare)->name(), "direct");
}

TEST(AdmissionRegistry, CubicRateSeedsRateCapMirror) {
  sim::Simulator sim;
  ctrl::SignalTable signals;
  ctrl::AdmissionContext context;
  context.sim = &sim;
  context.num_servers = 3;
  context.rate.initial_rate = 1000.0;
  context.signals = &signals;
  const auto gate = ctrl::make_admission_policy("cubic-rate", context);
  EXPECT_EQ(gate->name(), "cubic-rate");
  // Caps are seeded at attach, not first-response: cold servers read
  // the controller's initial rate, not a misleading zero.
  for (store::ServerId s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(signals.of(s).rate_cap, 1000.0) << s;
  }
}

TEST(PolicySwitchScenario, EndpointsFollowRuntimeResolution) {
  // Time-unsorted schedule with no t0 entry: the start endpoint is the
  // substrate's profile default and the end endpoint is the
  // time-sorted last epoch — exactly what the runtime executes.
  const util::Flags flags;
  core::ScenarioConfig base;
  base.policy_switch_spec = "2s:c3-noderate,1s:lor";
  const cli::SweepPlan plan = cli::build_sweep_plan("policy-switch", base, {1}, flags);
  ASSERT_EQ(plan.cases.size(), 3u);
  EXPECT_EQ(plan.cases[0].label, "static/least-outstanding");
  EXPECT_EQ(plan.cases[1].label, "static/c3-noderate");
  EXPECT_EQ(plan.cases[2].label, "switch/2s:c3-noderate,1s:lor");
}

TEST(PolicyScenarios, RejectConflictingPolicyFlags) {
  const util::Flags flags;
  core::ScenarioConfig bound;
  bound.policy_spec = "random";
  EXPECT_THROW(cli::build_sweep_plan("policy-shootout", bound, {1}, flags),
               std::invalid_argument);
  EXPECT_THROW(cli::build_sweep_plan("policy-switch", bound, {1}, flags),
               std::invalid_argument);
  core::ScenarioConfig tenant_epoch;
  tenant_epoch.policy_switch_spec = "1s:ghost:c3";
  EXPECT_THROW(cli::build_sweep_plan("policy-switch", tenant_epoch, {1}, flags),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Spec parsing

TEST(PolicySpecParsing, SingleAndPerTenant) {
  const auto single = ctrl::parse_policy_spec("c3");
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].tenant, "");
  EXPECT_EQ(single[0].policy, "c3");

  const auto mixed = ctrl::parse_policy_spec("lpc,tenantA:c3,tenantB:lor");
  ASSERT_EQ(mixed.size(), 3u);
  EXPECT_EQ(mixed[0].policy, "least-pending-cost");
  EXPECT_EQ(mixed[1].tenant, "tenantA");
  EXPECT_EQ(mixed[1].policy, "c3");
  EXPECT_EQ(mixed[2].tenant, "tenantB");
  EXPECT_EQ(mixed[2].policy, "least-outstanding");

  EXPECT_TRUE(ctrl::parse_policy_spec("").empty());
  EXPECT_THROW(ctrl::parse_policy_spec("tenantA:"), std::invalid_argument);
  EXPECT_THROW(ctrl::parse_policy_spec("nope"), std::invalid_argument);
}

TEST(PolicySwitchParsing, TimesAndBindings) {
  const auto switches = ctrl::parse_policy_switch_spec("t0:random,30s:c3,500ms:tenantA:lor");
  ASSERT_EQ(switches.size(), 3u);
  EXPECT_EQ(switches[0].at, Time::zero());
  EXPECT_EQ(switches[0].policy, "random");
  EXPECT_EQ(switches[1].at, Time::seconds(30.0));
  EXPECT_EQ(switches[1].policy, "c3");
  EXPECT_EQ(switches[2].at, Time::millis(500.0));
  EXPECT_EQ(switches[2].tenant, "tenantA");
  EXPECT_EQ(switches[2].policy, "least-outstanding");

  EXPECT_THROW(ctrl::parse_policy_switch_spec("random"), std::invalid_argument);
  EXPECT_THROW(ctrl::parse_policy_switch_spec("30:random"), std::invalid_argument);
  EXPECT_THROW(ctrl::parse_policy_switch_spec("-3s:random"), std::invalid_argument);
  EXPECT_THROW(ctrl::parse_policy_switch_spec("xs:random"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PolicyRuntime

TEST(PolicyRuntime, ResolvesInitialBindings) {
  sim::Simulator sim;
  ctrl::PolicyRuntime::Config config;
  config.default_policy = "lpc";
  config.policy_spec = "tenantB:lor";
  config.switch_spec = "t0:tenantA:c3";
  config.tenants = {"tenantA", "tenantB"};
  ctrl::PolicyRuntime runtime(sim, config);
  EXPECT_EQ(runtime.initial_policy(store::TenantId{0}), "c3");
  EXPECT_EQ(runtime.initial_policy(store::TenantId{1}), "least-outstanding");
  EXPECT_EQ(runtime.num_epochs(), 0u);
}

TEST(PolicyRuntime, RejectsUnknownTenant) {
  sim::Simulator sim;
  ctrl::PolicyRuntime::Config config;
  config.policy_spec = "ghost:c3";
  config.tenants = {"tenantA"};
  EXPECT_THROW(ctrl::PolicyRuntime(sim, config), std::invalid_argument);

  ctrl::PolicyRuntime::Config no_tenants;
  no_tenants.policy_spec = "ghost:c3";
  EXPECT_THROW(ctrl::PolicyRuntime(sim, no_tenants), std::invalid_argument);
}

TEST(PolicyRuntime, SwitchesAtEpochAndKeepsSignals) {
  sim::Simulator sim;
  ctrl::PolicyRuntime::Config config;
  config.default_policy = "round-robin";
  config.switch_spec = "2s:least-outstanding";
  ctrl::PolicyRuntime runtime(sim, config);
  ASSERT_EQ(runtime.num_epochs(), 1u);

  const auto selector = runtime.bind_client(0, store::TenantId{0}, util::Rng(3));
  EXPECT_EQ(selector->name(), "round-robin");
  selector->on_send(7, Duration::micros(100));
  runtime.start();

  sim.schedule_at(Time::seconds(3.0), [&sim] { sim.stop(); });
  sim.run();

  EXPECT_EQ(selector->name(), "least-outstanding");
  EXPECT_EQ(runtime.switches_applied(), 1u);
  // The accumulated signals survived the swap.
  EXPECT_EQ(runtime.signals_of(0).outstanding(7), 1u);
}

TEST(PolicyRuntime, TenantScopedSwitchTouchesOnlyThatTenant) {
  sim::Simulator sim;
  ctrl::PolicyRuntime::Config config;
  config.default_policy = "round-robin";
  config.switch_spec = "1s:batch:random";
  config.tenants = {"interactive", "batch"};
  ctrl::PolicyRuntime runtime(sim, config);
  const auto fg = runtime.bind_client(0, store::TenantId{0}, util::Rng(1));
  const auto bg = runtime.bind_client(1, store::TenantId{1}, util::Rng(2));
  runtime.start();
  sim.schedule_at(Time::seconds(2.0), [&sim] { sim.stop(); });
  sim.run();
  EXPECT_EQ(fg->name(), "round-robin");
  EXPECT_EQ(bg->name(), "random");
  EXPECT_EQ(runtime.switches_applied(), 1u);
}

// ---------------------------------------------------------------------------
// Golden-artifact equivalence: the legacy wiring (profile defaults,
// selector_override) and the explicit policy runtime path must produce
// byte-identical artifacts modulo the config block naming the binding
// and the wall-clock "timing" subtree.

core::ScenarioConfig small_config(core::SystemKind system) {
  core::ScenarioConfig config;
  config.system = system;
  config.num_tasks = 1500;
  config.seed = 1;
  return config;
}

/// The deterministic payload of an artifact: the "cases" subtree
/// serialized without indentation. "timing" sits outside it; the
/// config block and the per-case "policy"/"policy_switch"/"admission"
/// descriptors legitimately *name* the explicit binding, so they are
/// stripped — everything measured must match byte-for-byte.
std::string cases_fingerprint(const std::string& scenario,
                              const core::ScenarioConfig& base,
                              const std::vector<std::uint64_t>& seeds,
                              const std::vector<cli::CaseResult>& results) {
  stats::Json doc = cli::report_json(scenario, base, seeds, results);
  stats::Json& cases = doc["cases"];
  for (std::size_t i = 0; i < cases.size(); ++i) {
    cases.at(i).erase("policy");
    cases.at(i).erase("policy_switch");
    cases.at(i).erase("admission");
  }
  return doc.at("cases").dump_string(-1);
}

std::string artifact_csv_string(const std::string& scenario, const core::ScenarioConfig& base,
                                const std::vector<std::uint64_t>& seeds,
                                const std::vector<cli::CaseResult>& results) {
  const stats::Json doc = cli::report_json(scenario, base, seeds, results);
  std::ostringstream os;
  stats::artifact_csv(os, doc);
  return os.str();
}

std::vector<cli::CaseResult> run_case(const core::ScenarioConfig& config,
                                      const std::vector<std::uint64_t>& seeds,
                                      const std::string& label) {
  cli::CaseResult result;
  result.spec = {label, config};
  result.aggregate = core::run_seeds(config, seeds, /*parallel=*/false);
  return {std::move(result)};
}

TEST(GoldenEquivalence, ExplicitPolicyMatchesProfileDefault) {
  // kEqualMaxCredits's profile default is least-pending-cost wrapped
  // credit-aware; binding the same policy explicitly through the
  // runtime must not move a byte.
  const std::vector<std::uint64_t> seeds = {1, 2};
  const core::ScenarioConfig legacy = small_config(core::SystemKind::kEqualMaxCredits);
  core::ScenarioConfig bound = legacy;
  bound.policy_spec = "least-pending-cost";

  const auto legacy_results = run_case(legacy, seeds, "equalmax-credits");
  const auto bound_results = run_case(bound, seeds, "equalmax-credits");
  EXPECT_EQ(cases_fingerprint("golden", legacy, seeds, legacy_results),
            cases_fingerprint("golden", bound, seeds, bound_results));
  EXPECT_EQ(artifact_csv_string("golden", legacy, seeds, legacy_results),
            artifact_csv_string("golden", bound, seeds, bound_results));
}

TEST(GoldenEquivalence, PaperSystemsMatchUnderExplicitBinding) {
  // Each paper system against its profile selector bound explicitly.
  const std::vector<std::uint64_t> seeds = {1};
  const struct {
    core::SystemKind system;
    const char* selector;
  } cases[] = {
      {core::SystemKind::kC3, "c3"},
      {core::SystemKind::kEqualMaxModel, "first"},
      {core::SystemKind::kUnifIncrCredits, "least-pending-cost"},
  };
  for (const auto& entry : cases) {
    const core::ScenarioConfig legacy = small_config(entry.system);
    core::ScenarioConfig bound = legacy;
    bound.policy_spec = entry.selector;
    EXPECT_EQ(cases_fingerprint("golden", legacy, seeds,
                                run_case(legacy, seeds, to_string(entry.system))),
              cases_fingerprint("golden", bound, seeds,
                                run_case(bound, seeds, to_string(entry.system))))
        << to_string(entry.system);
  }
}

TEST(GoldenEquivalence, MultiTenantPerTenantBindingMatchesDefault) {
  const std::vector<std::uint64_t> seeds = {1};
  core::ScenarioConfig legacy = small_config(core::SystemKind::kEqualMaxCredits);
  legacy.tenant_spec =
      "interactive,share=0.7,fanout=lognormal:2.5:1.0:64;"
      "batch,share=0.3,fanout=lognormal:24:1.5:512,write=0.1";
  core::ScenarioConfig bound = legacy;
  bound.policy_spec = "interactive:least-pending-cost,batch:least-pending-cost";

  EXPECT_EQ(cases_fingerprint("golden", legacy, seeds, run_case(legacy, seeds, "multi-tenant")),
            cases_fingerprint("golden", bound, seeds, run_case(bound, seeds, "multi-tenant")));
}

TEST(GoldenEquivalence, LargeClusterScaledDownMatches) {
  const std::vector<std::uint64_t> seeds = {1};
  core::ScenarioConfig legacy = small_config(core::SystemKind::kEqualMaxCredits);
  legacy.cluster.num_servers = 20;
  legacy.num_clients = 50;
  core::ScenarioConfig bound = legacy;
  bound.policy_spec = "lpc";  // alias resolves to the profile default

  EXPECT_EQ(cases_fingerprint("golden", legacy, seeds, run_case(legacy, seeds, "large")),
            cases_fingerprint("golden", bound, seeds, run_case(bound, seeds, "large")));
}

TEST(GoldenEquivalence, SwitchBeyondEndOfRunIsInert) {
  const std::vector<std::uint64_t> seeds = {1};
  const core::ScenarioConfig legacy = small_config(core::SystemKind::kFifoDirect);
  core::ScenarioConfig switched = legacy;
  switched.policy_switch_spec = "t0:least-outstanding,3600s:random";

  EXPECT_EQ(cases_fingerprint("golden", legacy, seeds, run_case(legacy, seeds, "fifo-direct")),
            cases_fingerprint("golden", switched, seeds,
                              run_case(switched, seeds, "fifo-direct")));
}

TEST(ControlPlane, MidRunSwitchCompletesAndCounts) {
  core::ScenarioConfig config = small_config(core::SystemKind::kFifoDirect);
  config.num_tasks = 4000;
  // The default workload runs ~0.4s at this size; switch at 100ms.
  config.policy_switch_spec = "t0:random,100ms:least-outstanding";
  const core::RunResult result = core::run_scenario(config);
  EXPECT_EQ(result.tasks_completed, config.num_tasks);
  EXPECT_EQ(result.policy_switches, config.num_clients);
  EXPECT_EQ(result.gate_held_requests, 0u);
}

TEST(ControlPlane, AdmissionOverrideMatchesEquivalentSystem) {
  // equalmax-credits with --admission=direct runs the same control
  // plane as equalmax-direct: identical latency distributions.
  core::ScenarioConfig credits_off = small_config(core::SystemKind::kEqualMaxCredits);
  credits_off.admission_override = "direct";
  core::ScenarioConfig direct = small_config(core::SystemKind::kEqualMaxDirect);

  const core::RunResult a = core::run_scenario(credits_off);
  const core::RunResult b = core::run_scenario(direct);
  EXPECT_EQ(a.task_latency.percentile(99), b.task_latency.percentile(99));
  EXPECT_EQ(a.task_latency.mean(), b.task_latency.mean());
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.congestion_signals, 0u);  // no credits machinery wired
}

}  // namespace
}  // namespace brb
