// Integration tests: the full system (all SystemKinds) on scaled-down
// versions of the paper's setup — completion, conservation, determinism
// and cross-system ordering properties.
#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace brb::core {
namespace {

ScenarioConfig quick_config(SystemKind kind, std::uint64_t seed = 1) {
  ScenarioConfig config;
  config.system = kind;
  config.seed = seed;
  config.num_tasks = 4000;
  config.key_spec = "zipf:20000:0.9";
  config.warmup_fraction = 0.05;
  return config;
}

class AllSystems : public ::testing::TestWithParam<SystemKind> {};

TEST_P(AllSystems, CompletesEveryTaskAndConservesRequests) {
  const ScenarioConfig config = quick_config(GetParam());
  const RunResult result = run_scenario(config);

  EXPECT_EQ(result.tasks_completed, config.num_tasks);
  EXPECT_EQ(result.tasks_submitted, config.num_tasks);
  // Every submitted request got exactly one response.
  EXPECT_GT(result.requests_completed, config.num_tasks);  // fan-out > 1
  // Latency recorders saw the measured tasks.
  EXPECT_EQ(result.task_latency.count(), result.tasks_measured);
  EXPECT_GT(result.tasks_measured, 0u);
  EXPECT_LT(result.tasks_measured, config.num_tasks + 1);
}

TEST_P(AllSystems, LatencyIsBoundedBelowByNetworkAndService) {
  const ScenarioConfig config = quick_config(GetParam());
  const RunResult result = run_scenario(config);
  // A task cannot complete faster than two network hops plus the
  // service floor (base overhead).
  const auto floor_ns = (config.net_latency + config.net_latency + config.service_base)
                            .count_nanos();
  EXPECT_GE(result.task_latency.min().count_nanos(), floor_ns);
}

TEST_P(AllSystems, UtilizationNearTarget) {
  ScenarioConfig config = quick_config(GetParam());
  config.num_tasks = 20000;
  const RunResult result = run_scenario(config);
  // Mean utilization should be in the ballpark of the 70% target
  // (finite-run noise and drain-out allowed for).
  EXPECT_GT(result.mean_utilization, 0.45);
  EXPECT_LT(result.mean_utilization, 0.90);
}

TEST_P(AllSystems, DeterministicForFixedSeed) {
  const ScenarioConfig config = quick_config(GetParam(), 77);
  const RunResult a = run_scenario(config);
  const RunResult b = run_scenario(config);
  EXPECT_EQ(a.task_latency.percentile(50).count_nanos(),
            b.task_latency.percentile(50).count_nanos());
  EXPECT_EQ(a.task_latency.percentile(99).count_nanos(),
            b.task_latency.percentile(99).count_nanos());
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.network_messages, b.network_messages);
}

TEST_P(AllSystems, DifferentSeedsDiffer) {
  const RunResult a = run_scenario(quick_config(GetParam(), 1));
  const RunResult b = run_scenario(quick_config(GetParam(), 2));
  EXPECT_NE(a.task_latency.mean().count_nanos(), b.task_latency.mean().count_nanos());
}

INSTANTIATE_TEST_SUITE_P(
    Systems, AllSystems,
    ::testing::Values(SystemKind::kC3, SystemKind::kEqualMaxCredits,
                      SystemKind::kUnifIncrCredits, SystemKind::kEqualMaxModel,
                      SystemKind::kUnifIncrModel, SystemKind::kFifoDirect,
                      SystemKind::kRandomFifo, SystemKind::kEqualMaxDirect,
                      SystemKind::kUnifIncrDirect, SystemKind::kFifoModel,
                      SystemKind::kRequestSjfDirect, SystemKind::kCumSlackCredits,
                      SystemKind::kCumSlackModel),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Scenario, RejectsBadConfigs) {
  ScenarioConfig config = quick_config(SystemKind::kC3);
  config.num_tasks = 0;
  EXPECT_THROW(run_scenario(config), std::invalid_argument);

  config = quick_config(SystemKind::kC3);
  config.utilization = 0.0;
  EXPECT_THROW(run_scenario(config), std::invalid_argument);

  config = quick_config(SystemKind::kC3);
  config.num_clients = 0;
  EXPECT_THROW(run_scenario(config), std::invalid_argument);

  config = quick_config(SystemKind::kC3);
  config.warmup_fraction = 1.0;
  EXPECT_THROW(run_scenario(config), std::invalid_argument);
}

TEST(Scenario, SummaryMatchesRecorder) {
  const RunResult result = run_scenario(quick_config(SystemKind::kEqualMaxModel));
  const LatencySummary summary = summarize_tasks(result);
  EXPECT_DOUBLE_EQ(summary.p50_ms, result.task_latency.percentile(50).as_millis());
  EXPECT_DOUBLE_EQ(summary.p99_ms, result.task_latency.percentile(99).as_millis());
  EXPECT_GE(summary.p99_ms, summary.p95_ms);
  EXPECT_GE(summary.p95_ms, summary.p50_ms);
}

TEST(Scenario, RunSeedsAggregatesAcrossRuns) {
  ScenarioConfig config = quick_config(SystemKind::kEqualMaxModel);
  config.num_tasks = 2000;
  const AggregateResult agg = run_seeds(config, {1, 2, 3});
  EXPECT_EQ(agg.runs.size(), 3u);
  EXPECT_EQ(agg.p99_ms.count(), 3u);
  EXPECT_GT(agg.p50_ms.mean(), 0.0);
  // Seeds differ, so some spread exists but is finite.
  EXPECT_GE(agg.p99_ms.stddev(), 0.0);
}

TEST(Scenario, ParallelSeedsMatchSerialBitExactly) {
  ScenarioConfig config = quick_config(SystemKind::kEqualMaxCredits);
  config.num_tasks = 3000;
  const AggregateResult serial = run_seeds(config, {1, 2, 3}, /*parallel=*/false);
  const AggregateResult parallel = run_seeds(config, {1, 2, 3}, /*parallel=*/true);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].task_latency.percentile(99).count_nanos(),
              parallel.runs[i].task_latency.percentile(99).count_nanos());
    EXPECT_EQ(serial.runs[i].events_processed, parallel.runs[i].events_processed);
    EXPECT_EQ(serial.runs[i].network_messages, parallel.runs[i].network_messages);
  }
  EXPECT_DOUBLE_EQ(serial.p99_ms.mean(), parallel.p99_ms.mean());
}

TEST(Scenario, ModelNeverWorseThanCreditsAtP99) {
  // The ideal model is the lower bound BRB aims for; with matched
  // seeds and a non-trivial run it must not lose to the realizable
  // credits scheme at the tail.
  ScenarioConfig model_config = quick_config(SystemKind::kEqualMaxModel, 5);
  ScenarioConfig credits_config = quick_config(SystemKind::kEqualMaxCredits, 5);
  model_config.num_tasks = 20000;
  credits_config.num_tasks = 20000;
  const RunResult model = run_scenario(model_config);
  const RunResult credits = run_scenario(credits_config);
  EXPECT_LE(model.task_latency.percentile(99).count_nanos(),
            credits.task_latency.percentile(99).count_nanos() * 11 / 10);
}

TEST(Scenario, TaskAwareBeatsTaskObliviousAtTail) {
  ScenarioConfig brb_config = quick_config(SystemKind::kEqualMaxDirect, 5);
  ScenarioConfig fifo_config = quick_config(SystemKind::kFifoDirect, 5);
  brb_config.num_tasks = 20000;
  fifo_config.num_tasks = 20000;
  const RunResult brb = run_scenario(brb_config);
  const RunResult fifo = run_scenario(fifo_config);
  EXPECT_LT(brb.task_latency.percentile(99).count_nanos(),
            fifo.task_latency.percentile(99).count_nanos());
}

}  // namespace
}  // namespace brb::core
