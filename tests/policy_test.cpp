// Tests for replica policies, the C3 implementation, and the BRB
// priority-assignment policies (the paper's core algorithms).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ctrl/replica_policy.hpp"
#include "ctrl/signal_table.hpp"
#include "policy/c3.hpp"
#include "policy/priority_policy.hpp"
#include "util/rng.hpp"

namespace brb::policy {
namespace {

using sim::Duration;
using sim::Time;

const std::vector<store::ServerId> kReplicas = {3, 5, 7};

store::ServerFeedback feedback(std::uint32_t queue, double rate) {
  store::ServerFeedback f;
  f.queue_length = queue;
  f.service_rate = rate;
  f.service_time = Duration::micros(300);
  return f;
}

// ---------------------------------------------------------------------------
// Replica policies (stateless rankings over one SignalTable)

/// Test harness pairing one ctrl policy with its own SignalTable —
/// the shape the production DispatchEndpoint maintains per client.
template <typename Policy>
struct Bound {
  ctrl::SignalTable signals;
  Policy policy;

  Bound() = default;
  explicit Bound(Policy p) : policy(std::move(p)) {}

  store::ServerId select(const std::vector<store::ServerId>& replicas, Duration cost) {
    return policy.select(signals, replicas, cost);
  }
  void on_send(store::ServerId server, Duration cost) { signals.on_send(server, cost); }
  void on_response(store::ServerId server, const store::ServerFeedback& fb, Duration rtt,
                   Duration cost) {
    signals.on_response(server, fb, rtt, cost);
  }
};

TEST(RandomPolicy, UniformOverReplicas) {
  Bound<ctrl::RandomPolicy> selector{ctrl::RandomPolicy{util::Rng(1)}};
  std::map<store::ServerId, int> counts;
  for (int i = 0; i < 30000; ++i) ++counts[selector.select(kReplicas, Duration::zero())];
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [server, count] : counts) EXPECT_NEAR(count, 10000, 700);
}

TEST(RandomPolicy, ThrowsOnEmpty) {
  Bound<ctrl::RandomPolicy> selector{ctrl::RandomPolicy{util::Rng(2)}};
  EXPECT_THROW(selector.select({}, Duration::zero()), std::invalid_argument);
}

TEST(RoundRobinPolicy, Cycles) {
  Bound<ctrl::RoundRobinPolicy> selector;
  EXPECT_EQ(selector.select(kReplicas, Duration::zero()), 3u);
  EXPECT_EQ(selector.select(kReplicas, Duration::zero()), 5u);
  EXPECT_EQ(selector.select(kReplicas, Duration::zero()), 7u);
  EXPECT_EQ(selector.select(kReplicas, Duration::zero()), 3u);
}

TEST(LeastOutstandingPolicy, PicksIdleServer) {
  Bound<ctrl::LeastOutstandingPolicy> selector;
  selector.on_send(3, Duration::zero());
  selector.on_send(3, Duration::zero());
  selector.on_send(5, Duration::zero());
  EXPECT_EQ(selector.select(kReplicas, Duration::zero()), 7u);
}

TEST(LeastOutstandingPolicy, ResponsesDecrement) {
  Bound<ctrl::LeastOutstandingPolicy> selector;
  selector.on_send(3, Duration::zero());
  selector.on_response(3, feedback(0, 1), Duration::micros(100), Duration::zero());
  EXPECT_EQ(selector.signals.outstanding(3), 0u);
  // Double response never underflows.
  selector.on_response(3, feedback(0, 1), Duration::micros(100), Duration::zero());
  EXPECT_EQ(selector.signals.outstanding(3), 0u);
}

TEST(LeastOutstandingPolicy, TieBreakRotates) {
  Bound<ctrl::LeastOutstandingPolicy> selector;
  std::map<store::ServerId, int> counts;
  for (int i = 0; i < 3000; ++i) ++counts[selector.select(kReplicas, Duration::zero())];
  // All tied at zero outstanding: rotation spreads the picks evenly.
  for (const auto& [server, count] : counts) EXPECT_EQ(count, 1000);
}

TEST(LeastPendingCostPolicy, PicksCheapestServer) {
  Bound<ctrl::LeastPendingCostPolicy> selector;
  selector.on_send(3, Duration::micros(500));
  selector.on_send(5, Duration::micros(100));
  selector.on_send(7, Duration::micros(300));
  EXPECT_EQ(selector.select(kReplicas, Duration::zero()), 5u);
  EXPECT_EQ(selector.signals.pending_cost(3), Duration::micros(500));
}

TEST(LeastPendingCostPolicy, ResponsesReleaseCost) {
  Bound<ctrl::LeastPendingCostPolicy> selector;
  selector.on_send(3, Duration::micros(500));
  selector.on_response(3, feedback(0, 1), Duration::micros(100), Duration::micros(500));
  EXPECT_EQ(selector.signals.pending_cost(3), Duration::zero());
  // Over-release clamps at zero.
  selector.on_response(3, feedback(0, 1), Duration::micros(100), Duration::micros(500));
  EXPECT_EQ(selector.signals.pending_cost(3), Duration::zero());
}

TEST(FirstReplicaPolicy, AlwaysFront) {
  Bound<ctrl::FirstReplicaPolicy> selector;
  EXPECT_EQ(selector.select(kReplicas, Duration::zero()), 3u);
  EXPECT_THROW(selector.select({}, Duration::zero()), std::invalid_argument);
}

TEST(TwoChoicesPolicy, FollowsOutstandingCounts) {
  Bound<ctrl::TwoChoicesPolicy> selector{ctrl::TwoChoicesPolicy{util::Rng(9)}};
  // Load servers 3 and 5; with three replicas every sampled pair
  // contains 7 at least sometimes, and 7 must win whenever it does.
  selector.on_send(3, Duration::zero());
  selector.on_send(3, Duration::zero());
  selector.on_send(5, Duration::zero());
  std::map<store::ServerId, int> counts;
  for (int i = 0; i < 3000; ++i) ++counts[selector.select(kReplicas, Duration::zero())];
  EXPECT_GT(counts[7], counts[3]);
  EXPECT_EQ(selector.signals.outstanding(3), 2u);
}

TEST(SignalBackedPolicies, ObservationsLandInTheTable) {
  // Policies are stateless rankings; observations land in the shared
  // SignalTable, not in per-policy private state.
  Bound<ctrl::LeastOutstandingPolicy> selector;
  selector.on_send(3, Duration::micros(50));
  EXPECT_EQ(selector.signals.outstanding(3), 1u);
  EXPECT_EQ(selector.signals.pending_cost(3), Duration::micros(50));
  EXPECT_EQ(selector.policy.name(), "least-outstanding");
}

// ---------------------------------------------------------------------------
// C3 selector

C3Config c3_config() {
  C3Config config;
  config.num_clients = 18;
  return config;
}

TEST(C3Selector, PrefersShorterQueues) {
  C3Selector selector(c3_config());
  selector.on_response(3, feedback(20, 14'000), Duration::micros(500), Duration::zero());
  selector.on_response(5, feedback(1, 14'000), Duration::micros(500), Duration::zero());
  selector.on_response(7, feedback(10, 14'000), Duration::micros(500), Duration::zero());
  EXPECT_EQ(selector.select(kReplicas, Duration::zero()), 5u);
}

TEST(C3Selector, CubicPenaltyDominatesForLongQueues) {
  C3Selector selector(c3_config());
  // Server 3: tiny response time but a huge queue; server 5: slower
  // responses, empty queue. The q^3 term must win.
  selector.on_response(3, feedback(50, 14'000), Duration::micros(100), Duration::zero());
  selector.on_response(5, feedback(0, 14'000), Duration::micros(2'000), Duration::zero());
  EXPECT_GT(selector.score(3), selector.score(5));
}

TEST(C3Selector, OutstandingRequestsRaiseScore) {
  C3Selector selector(c3_config());
  selector.on_response(3, feedback(2, 14'000), Duration::micros(500), Duration::zero());
  const double before = selector.score(3);
  selector.on_send(3, Duration::zero());
  selector.on_send(3, Duration::zero());
  EXPECT_GT(selector.score(3), before);
  EXPECT_EQ(selector.outstanding(3), 2u);
}

TEST(C3Selector, EwmaSmoothsResponseTimes) {
  C3Config config = c3_config();
  config.ewma_alpha = 0.5;
  C3Selector selector(config);
  selector.on_response(3, feedback(0, 14'000), Duration::micros(1000), Duration::zero());
  selector.on_response(3, feedback(0, 14'000), Duration::micros(2000), Duration::zero());
  // EWMA(1000, 2000; a=0.5) = 1500us -> score reflects the blend, and
  // selecting between two servers with raw extremes goes to the one
  // whose smoothed estimate is lower.
  selector.on_response(5, feedback(0, 14'000), Duration::micros(1600), Duration::zero());
  EXPECT_LT(selector.score(3), selector.score(5));
}

TEST(C3Selector, UnknownServersUseNeutralPrior) {
  C3Selector selector(c3_config());
  // Never-seen servers are selectable without throwing.
  EXPECT_NO_THROW(selector.select(kReplicas, Duration::zero()));
}

TEST(C3Selector, RejectsBadConfig) {
  C3Config bad = c3_config();
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(C3Selector{bad}, std::invalid_argument);
  bad = c3_config();
  bad.queue_exponent = 0.5;
  EXPECT_THROW(C3Selector{bad}, std::invalid_argument);
  bad = c3_config();
  bad.num_clients = 0;
  EXPECT_THROW(C3Selector{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Cubic rate controller

CubicRateController::Config rate_config(double initial = 1000.0) {
  CubicRateController::Config config;
  config.initial_rate = initial;
  return config;
}

TEST(CubicRateController, TokenBucketLimitsBurst) {
  CubicRateController controller(rate_config());
  const Time t0 = Time::zero();
  int sent = 0;
  while (controller.try_acquire(1, t0)) ++sent;
  EXPECT_EQ(sent, 8);  // burst depth
}

TEST(CubicRateController, TokensRefillAtRate) {
  CubicRateController controller(rate_config(1000.0));
  Time t = Time::zero();
  while (controller.try_acquire(1, t)) {
  }
  // After 10ms at 1000 req/s, ~10 tokens are back (capped at burst 8).
  t = Time::millis(10);
  int sent = 0;
  while (controller.try_acquire(1, t)) ++sent;
  EXPECT_EQ(sent, 8);
  // After 2ms, exactly 2 tokens.
  t = Time::millis(12);
  sent = 0;
  while (controller.try_acquire(1, t)) ++sent;
  EXPECT_EQ(sent, 2);
}

TEST(CubicRateController, EarliestSendIsConsistent) {
  CubicRateController controller(rate_config(1000.0));
  Time t = Time::zero();
  while (controller.try_acquire(1, t)) {
  }
  const Time when = controller.earliest_send(1, t);
  EXPECT_GT(when, t);
  // At the promised time a token is indeed available.
  EXPECT_TRUE(controller.try_acquire(1, when));
}

TEST(CubicRateController, DecreasesWhenReceiveLagsSend) {
  CubicRateController controller(rate_config(1000.0));
  // Window 1: send 10, receive only 2 -> congestion on window close.
  Time t = Time::zero();
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(controller.try_acquire(1, t));
  t = Time::millis(2);
  controller.try_acquire(1, t);
  t = Time::millis(4);
  controller.try_acquire(1, t);
  t = Time::millis(25);  // past the 20ms window
  controller.on_response(1, feedback(5, 10'000), t);
  EXPECT_LT(controller.rate_of(1), 1000.0);
  EXPECT_EQ(controller.decreases(), 1u);
}

TEST(CubicRateController, GrowsWhenBalanced) {
  CubicRateController controller(rate_config(1000.0));
  Time t = Time::zero();
  // Balanced traffic across several windows -> cubic growth kicks in.
  for (int w = 1; w <= 50; ++w) {
    for (int i = 0; i < 4; ++i) controller.try_acquire(1, t);
    t = Time::millis(w * 21);
    for (int i = 0; i < 4; ++i) controller.on_response(1, feedback(0, 10'000), t);
  }
  EXPECT_GT(controller.rate_of(1), 1000.0);
  EXPECT_EQ(controller.decreases(), 0u);
}

TEST(CubicRateController, RecoveryApproachesPreDecreaseRate) {
  CubicRateController controller(rate_config(1000.0));
  Time t = Time::zero();
  // Force one decrease.
  for (int i = 0; i < 8; ++i) controller.try_acquire(1, t);
  t = Time::millis(25);
  controller.on_response(1, feedback(9, 10'000), t);
  const double post_decrease = controller.rate_of(1);
  ASSERT_LT(post_decrease, 1000.0);
  // Balanced windows afterwards: rate recovers toward 1000 within ~1s.
  for (int w = 1; w <= 50; ++w) {
    controller.try_acquire(1, t);
    t = t + Duration::millis(21);
    controller.on_response(1, feedback(0, 10'000), t);
  }
  EXPECT_GE(controller.rate_of(1), 1000.0 * 0.95);
}

TEST(CubicRateController, RecoveryCrossesWmaxAndKeepsGrowing) {
  // Full CUBIC episode: a decrease records W_max = 1000, the recovery
  // curve climbs back, crosses W_max (the curve's inflection point),
  // and continues into the convex probing region beyond it.
  CubicRateController controller(rate_config(1000.0));
  Time t = Time::zero();
  for (int i = 0; i < 8; ++i) controller.try_acquire(1, t);
  t = Time::millis(25);
  controller.on_response(1, feedback(9, 10'000), t);  // congestion verdict
  ASSERT_EQ(controller.decreases(), 1u);
  const double post_decrease = controller.rate_of(1);
  ASSERT_LT(post_decrease, 1000.0);

  // Balanced windows until the cap crosses W_max.
  double rate_at_crossing = 0.0;
  for (int w = 1; w <= 400 && rate_at_crossing == 0.0; ++w) {
    controller.try_acquire(1, t);
    t = t + Duration::millis(21);
    controller.on_response(1, feedback(0, 10'000), t);
    if (controller.rate_of(1) > 1000.0) rate_at_crossing = controller.rate_of(1);
  }
  ASSERT_GT(rate_at_crossing, 1000.0) << "recovery never crossed W_max";

  // Past W_max the curve is convex: growth must continue, not plateau.
  for (int w = 0; w < 100; ++w) {
    controller.try_acquire(1, t);
    t = t + Duration::millis(21);
    controller.on_response(1, feedback(0, 10'000), t);
  }
  EXPECT_GT(controller.rate_of(1), rate_at_crossing);
  EXPECT_EQ(controller.decreases(), 1u);  // no spurious decreases en route
}

TEST(CubicRateController, RespectsMinAndMaxRate) {
  CubicRateController::Config config = rate_config(100.0);
  config.min_rate = 50.0;
  config.max_rate = 200.0;
  CubicRateController controller(config);
  Time t = Time::zero();
  // Hammer with congestion verdicts.
  for (int w = 1; w <= 30; ++w) {
    for (int i = 0; i < 10; ++i) controller.try_acquire(1, t);
    t = t + Duration::millis(21);
    controller.on_response(1, feedback(99, 1'000), t);
  }
  EXPECT_GE(controller.rate_of(1), 50.0);
  // And with long balanced growth.
  for (int w = 1; w <= 200; ++w) {
    controller.try_acquire(1, t);
    t = t + Duration::millis(21);
    controller.on_response(1, feedback(0, 10'000), t);
  }
  EXPECT_LE(controller.rate_of(1), 200.0);
}

TEST(CubicRateController, RejectsBadConfig) {
  EXPECT_THROW(CubicRateController(rate_config(0.0)), std::invalid_argument);
  auto bad = rate_config();
  bad.beta = 1.5;
  EXPECT_THROW(CubicRateController{bad}, std::invalid_argument);
  bad = rate_config();
  bad.burst = 0.5;
  EXPECT_THROW(CubicRateController{bad}, std::invalid_argument);
  bad = rate_config();
  bad.congestion_tolerance = 0.9;
  EXPECT_THROW(CubicRateController{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Priority policies (the BRB algorithms)

TaskPlan make_plan(std::vector<std::pair<store::GroupId, std::int64_t>> requests) {
  TaskPlan plan;
  plan.task_id = 1;
  plan.arrival = Time::micros(123);
  for (const auto& [group, cost_ns] : requests) {
    PlannedRequest request;
    request.group = group;
    request.expected_cost = Duration::nanos(cost_ns);
    plan.requests.push_back(request);
  }
  compute_bottleneck(plan);
  return plan;
}

TEST(ComputeBottleneck, SumsPerGroupAndTakesMax) {
  // Fig. 1 structure: group 0 = {A:1}, group 1 = {B:1, C:1}, unit 1000ns.
  const TaskPlan plan = make_plan({{0, 1000}, {1, 1000}, {1, 1000}});
  EXPECT_EQ(plan.bottleneck_cost.count_nanos(), 2000);
}

TEST(ComputeBottleneck, SingleRequest) {
  const TaskPlan plan = make_plan({{0, 500}});
  EXPECT_EQ(plan.bottleneck_cost.count_nanos(), 500);
}

TEST(FifoPolicy, PriorityIsArrivalTime) {
  TaskPlan plan = make_plan({{0, 1000}, {1, 2000}});
  FifoPolicy policy;
  policy.assign(plan);
  for (const auto& request : plan.requests) {
    EXPECT_DOUBLE_EQ(request.priority, 123'000.0);
  }
}

TEST(EqualMaxPolicy, AllRequestsGetBottleneckCost) {
  TaskPlan plan = make_plan({{0, 1000}, {1, 1000}, {1, 1000}});
  EqualMaxPolicy policy;
  policy.assign(plan);
  for (const auto& request : plan.requests) {
    EXPECT_DOUBLE_EQ(request.priority, 2000.0);
  }
}

TEST(EqualMaxPolicy, ShorterTasksGetBetterPriority) {
  // Fig. 1: T1 bottleneck 2 units, T2 bottleneck 1 unit -> T2's
  // requests outrank T1's everywhere.
  TaskPlan t1 = make_plan({{0, 1000}, {1, 1000}, {1, 1000}});
  TaskPlan t2 = make_plan({{2, 1000}, {0, 1000}});
  EqualMaxPolicy policy;
  policy.assign(t1);
  policy.assign(t2);
  EXPECT_LT(t2.requests[1].priority, t1.requests[0].priority);
}

TEST(UnifIncrPolicy, PriorityIsSlackBehindBottleneck) {
  TaskPlan plan = make_plan({{0, 1000}, {1, 1500}, {2, 3000}});
  UnifIncrPolicy policy;
  policy.assign(plan);
  EXPECT_DOUBLE_EQ(plan.requests[0].priority, 2000.0);  // 3000 - 1000
  EXPECT_DOUBLE_EQ(plan.requests[1].priority, 1500.0);  // 3000 - 1500
  EXPECT_DOUBLE_EQ(plan.requests[2].priority, 0.0);     // the bottleneck
}

TEST(UnifIncrPolicy, BottleneckRequestHasZeroSlack) {
  TaskPlan plan = make_plan({{0, 100}, {1, 100}, {2, 100}});
  UnifIncrPolicy policy;
  policy.assign(plan);
  // All groups equal: every request is its group's bottleneck.
  for (const auto& request : plan.requests) EXPECT_DOUBLE_EQ(request.priority, 0.0);
}

TEST(UnifIncrPolicy, SlackNeverNegative) {
  TaskPlan plan = make_plan({{0, 500}, {0, 700}});  // same group sums to 1200
  UnifIncrPolicy policy;
  policy.assign(plan);
  for (const auto& request : plan.requests) EXPECT_GE(request.priority, 0.0);
}

TEST(CumSlackPolicy, LastBottleneckRequestHasZeroSlack) {
  // Group 1 holds two 1000ns requests (bottleneck 2000ns).
  TaskPlan plan = make_plan({{0, 1000}, {1, 1000}, {1, 1000}});
  CumSlackPolicy policy;
  policy.assign(plan);
  EXPECT_DOUBLE_EQ(plan.requests[0].priority, 1000.0);  // 2000 - 1000
  EXPECT_DOUBLE_EQ(plan.requests[1].priority, 1000.0);  // first of group 1
  EXPECT_DOUBLE_EQ(plan.requests[2].priority, 0.0);     // cumulative = bottleneck
}

TEST(CumSlackPolicy, MatchesUnifIncrForSingletonSubtasks) {
  TaskPlan a = make_plan({{0, 500}, {1, 1500}, {2, 900}});
  TaskPlan b = a;
  CumSlackPolicy cumslack;
  UnifIncrPolicy unifincr;
  cumslack.assign(a);
  unifincr.assign(b);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests[i].priority, b.requests[i].priority);
  }
}

TEST(CumSlackPolicy, SlackNeverNegative) {
  TaskPlan plan = make_plan({{0, 300}, {0, 300}, {0, 300}, {1, 100}});
  CumSlackPolicy policy;
  policy.assign(plan);
  for (const auto& request : plan.requests) EXPECT_GE(request.priority, 0.0);
}

TEST(RequestSjfPolicy, PriorityIsOwnCost) {
  TaskPlan plan = make_plan({{0, 111}, {1, 222}});
  RequestSjfPolicy policy;
  policy.assign(plan);
  EXPECT_DOUBLE_EQ(plan.requests[0].priority, 111.0);
  EXPECT_DOUBLE_EQ(plan.requests[1].priority, 222.0);
}

TEST(PolicyFactory, KnownNames) {
  EXPECT_EQ(make_priority_policy("fifo")->name(), "fifo");
  EXPECT_EQ(make_priority_policy("equalmax")->name(), "equalmax");
  EXPECT_EQ(make_priority_policy("unifincr")->name(), "unifincr");
  EXPECT_EQ(make_priority_policy("request-sjf")->name(), "request-sjf");
  EXPECT_EQ(make_priority_policy("cumslack")->name(), "cumslack");
  EXPECT_THROW(make_priority_policy("lifo"), std::invalid_argument);
}

}  // namespace
}  // namespace brb::policy
