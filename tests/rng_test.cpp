// Tests for util::Rng and its distributions: determinism, stream
// independence, and statistical sanity of every sampler.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "stats/summary.hpp"

namespace brb::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro, LongJumpChangesStream) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(4);
  stats::Summary s;
  for (int i = 0; i < 200000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.002);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 7.0);
  }
}

TEST(Rng, UniformThrowsOnInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(6);
  std::map<std::int64_t, int> histogram;
  for (int i = 0; i < 60000; ++i) ++histogram[rng.uniform_int(1, 6)];
  ASSERT_EQ(histogram.size(), 6u);
  for (const auto& [value, count] : histogram) {
    EXPECT_GE(value, 1);
    EXPECT_LE(value, 6);
    // Each face ~10000; allow generous slack.
    EXPECT_NEAR(count, 10000, 600);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformU64BelowRespectsBound) {
  Rng rng(21);
  for (const std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.uniform_u64_below(bound), bound);
  }
}

TEST(Rng, UniformU64BelowMatchesUniformIntStream) {
  // Same rejection-sampling core: for int64-expressible bounds the two
  // APIs must consume the generator identically and agree draw-by-draw.
  Rng a(22);
  Rng b(22);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(a.uniform_u64_below(1000)), b.uniform_int(0, 999));
  }
}

TEST(Rng, UniformU64BelowUniformBeyondInt64Range) {
  // Bounds past 2^63 are exactly the regime uniform_int cannot span.
  Rng rng(23);
  const std::uint64_t bound = (1ULL << 63) + (1ULL << 62);
  const std::uint64_t bucket_width = bound / 8 + 1;
  std::array<int, 8> buckets{};
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = rng.uniform_u64_below(bound);
    ASSERT_LT(v, bound);
    ++buckets[static_cast<std::size_t>(v / bucket_width)];
  }
  for (const int count : buckets) EXPECT_NEAR(count, draws / 8, draws / 8 * 0.10);
}

TEST(Rng, UniformU64BelowRejectsZeroBound) {
  Rng rng(24);
  EXPECT_THROW(rng.uniform_u64_below(0), std::invalid_argument);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanAndCv) {
  Rng rng(10);
  stats::Summary s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.05);
  // Exponential: stddev == mean.
  EXPECT_NEAR(s.stddev() / s.mean(), 1.0, 0.03);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(10);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  stats::Summary s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMean) {
  Rng rng(12);
  stats::Summary s;
  const double mu = 0.0;
  const double sigma = 0.5;
  for (int i = 0; i < 200000; ++i) s.add(rng.lognormal(mu, sigma));
  EXPECT_NEAR(s.mean(), std::exp(mu + sigma * sigma / 2), 0.02);
}

TEST(Rng, ParetoSupportAndMean) {
  Rng rng(13);
  stats::Summary s;
  const double shape = 3.0;
  const double scale = 2.0;
  for (int i = 0; i < 200000; ++i) {
    const double v = rng.pareto(shape, scale);
    ASSERT_GE(v, scale);
    s.add(v);
  }
  // E[X] = shape*scale/(shape-1) = 3.
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
}

TEST(Rng, GeneralizedParetoReducesToExponentialAtZeroShape) {
  Rng rng(14);
  stats::Summary s;
  for (int i = 0; i < 200000; ++i) s.add(rng.generalized_pareto(0.0, 2.0, 0.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(Rng, GeneralizedParetoMeanMatchesFormula) {
  Rng rng(15);
  stats::Summary s;
  const double shape = 0.3;
  const double scale = 100.0;
  for (int i = 0; i < 400000; ++i) s.add(rng.generalized_pareto(shape, scale, 0.0));
  // E[X] = scale / (1 - shape) for shape < 1.
  EXPECT_NEAR(s.mean(), scale / (1.0 - shape), scale * 0.05);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(16);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.bounded_pareto(1.2, 64.0, 4096.0);
    ASSERT_GE(v, 64.0);
    ASSERT_LE(v, 4096.0);
  }
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(17);
  stats::Summary s;
  for (int i = 0; i < 100000; ++i) s.add(static_cast<double>(rng.poisson(3.0)));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.variance(), 3.0, 0.15);
}

TEST(Rng, PoissonLargeMean) {
  Rng rng(18);
  stats::Summary s;
  for (int i = 0; i < 50000; ++i) s.add(static_cast<double>(rng.poisson(200.0)));
  EXPECT_NEAR(s.mean(), 200.0, 1.0);
  EXPECT_NEAR(s.variance(), 200.0, 10.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(20);
  Rng child = parent.split();
  // Correlation between the two streams should be negligible.
  stats::Summary cov;
  stats::Summary a_stats;
  stats::Summary b_stats;
  for (int i = 0; i < 50000; ++i) {
    const double a = parent.uniform();
    const double b = child.uniform();
    a_stats.add(a);
    b_stats.add(b);
    cov.add((a - 0.5) * (b - 0.5));
  }
  EXPECT_LT(std::abs(cov.mean()), 0.003);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(21);
  Rng b(21);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child_a.next_u64(), child_b.next_u64());
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(22);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, WeightedIndexRejectsDegenerateInput) {
  Rng rng(23);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({1.0, -2.0}), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(24);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Zipf, UniformWhenExponentZero) {
  Rng rng(25);
  ZipfDistribution zipf(0.0, 10);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng) - 1];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 800);
}

TEST(Zipf, RankOneIsHottest) {
  Rng rng(26);
  ZipfDistribution zipf(1.2, 1000);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.sample(rng) - 1];
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[9], counts[99]);
  EXPECT_GT(counts[99], counts[999]);
}

TEST(Zipf, FrequenciesFollowPowerLaw) {
  Rng rng(27);
  const double s = 1.0;
  ZipfDistribution zipf(s, 100);
  std::vector<double> counts(100, 0.0);
  const int n = 500000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng) - 1];
  // count(rank 1) / count(rank 10) should be ~ 10^s.
  EXPECT_NEAR(counts[0] / counts[9], 10.0, 1.0);
}

TEST(Zipf, SingleElement) {
  Rng rng(28);
  ZipfDistribution zipf(1.5, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(Zipf, SamplesAlwaysInRange) {
  Rng rng(29);
  ZipfDistribution zipf(0.9, 37);
  for (int i = 0; i < 50000; ++i) {
    const auto v = zipf.sample(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 37u);
  }
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfDistribution(-0.1, 10), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(1.0, 0), std::invalid_argument);
}

class ZipfExponentSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentSweep, HeadProbabilityMatchesAnalytic) {
  const double s = GetParam();
  Rng rng(31);
  const std::uint64_t n = 50;
  ZipfDistribution zipf(s, n);
  double harmonic = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) harmonic += 1.0 / std::pow(static_cast<double>(k), s);
  const double expect_p1 = 1.0 / harmonic;
  int hits = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) hits += zipf.sample(rng) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / draws, expect_p1, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentSweep,
                         ::testing::Values(0.5, 0.9, 1.0, 1.2, 2.0));

}  // namespace
}  // namespace brb::util
