// Tests for the backend-server substrate: service-time models, queue
// disciplines, the server itself, and validation against queueing
// theory (the simulator must match M/M/c analytics before Figure 2 can
// be trusted).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "server/backend_server.hpp"
#include "server/queue_discipline.hpp"
#include "server/service_model.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"
#include "workload/size_dist.hpp"

namespace brb::server {
namespace {

using sim::Duration;
using sim::Time;

// ---------------------------------------------------------------------------
// Service-time models

TEST(SizeLinearServiceModel, ExpectedIsAffineInSize) {
  SizeLinearServiceModel model(Duration::micros(10), 2.0);  // 2 ns per byte
  EXPECT_EQ(model.expected(0).count_nanos(), 10'000);
  EXPECT_EQ(model.expected(1000).count_nanos(), 12'000);
}

TEST(SizeLinearServiceModel, DeterministicWithoutNoise) {
  SizeLinearServiceModel model(Duration::micros(10), 2.0);
  util::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.sample(500, rng).count_nanos(), model.expected(500).count_nanos());
  }
}

TEST(SizeLinearServiceModel, NoiseHasUnitMean) {
  SizeLinearServiceModel model(Duration::micros(100), 0.0, 0.5);
  util::Rng rng(2);
  stats::Summary s;
  for (int i = 0; i < 200000; ++i) {
    s.add(static_cast<double>(model.sample(1, rng).count_nanos()));
  }
  EXPECT_NEAR(s.mean(), 100'000.0, 1'500.0);
}

TEST(SizeLinearServiceModel, CalibrationHitsTargetRate) {
  // Paper: 3500 requests/s per core over the Atikoglu mean size.
  const double mean_size = 329.0;
  const auto model =
      SizeLinearServiceModel::calibrate(3500.0, mean_size, Duration::zero(), 0.0);
  EXPECT_NEAR(model.expected(static_cast<std::uint32_t>(mean_size)).as_seconds(), 1.0 / 3500.0,
              1e-6);
}

TEST(SizeLinearServiceModel, CalibrationRejectsImpossibleBase) {
  // Base overhead longer than the whole service budget cannot calibrate.
  EXPECT_THROW(SizeLinearServiceModel::calibrate(3500.0, 300.0, Duration::millis(1), 0.0),
               std::invalid_argument);
  EXPECT_THROW(SizeLinearServiceModel::calibrate(0.0, 300.0, Duration::zero(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(SizeLinearServiceModel::calibrate(3500.0, 0.0, Duration::zero(), 0.0),
               std::invalid_argument);
}

TEST(SizeLinearServiceModel, RejectsDegenerateConstruction) {
  EXPECT_THROW(SizeLinearServiceModel(Duration::zero(), 0.0), std::invalid_argument);
  EXPECT_THROW(SizeLinearServiceModel(Duration::zero() - Duration::micros(1), 1.0),
               std::invalid_argument);
  EXPECT_THROW(SizeLinearServiceModel(Duration::micros(1), -1.0), std::invalid_argument);
}

TEST(ExponentialServiceModel, MeanAndMemorylessness) {
  ExponentialServiceModel model(Duration::micros(100));
  util::Rng rng(3);
  stats::Summary s;
  for (int i = 0; i < 200000; ++i) {
    s.add(static_cast<double>(model.sample(12345, rng).count_nanos()));
  }
  EXPECT_NEAR(s.mean(), 100'000.0, 1'500.0);
  EXPECT_NEAR(s.stddev() / s.mean(), 1.0, 0.02);  // CV = 1
  EXPECT_EQ(model.expected(1).count_nanos(), 100'000);
  EXPECT_THROW(ExponentialServiceModel(Duration::zero()), std::invalid_argument);
}

TEST(DeterministicServiceModel, Constant) {
  DeterministicServiceModel model(Duration::micros(42));
  util::Rng rng(4);
  EXPECT_EQ(model.sample(1, rng).count_nanos(), 42'000);
  EXPECT_THROW(DeterministicServiceModel(Duration::zero()), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Queue disciplines

QueuedRead make_read(store::Priority priority, store::RequestId id = 0,
                     std::uint64_t submit_seq = 0) {
  QueuedRead read;
  read.request.request_id = id;
  read.request.priority = priority;
  read.submit_seq = submit_seq;
  return read;
}

TEST(FifoDiscipline, PopsInsertionOrder) {
  FifoDiscipline q;
  q.push(make_read(5.0, 1));
  q.push(make_read(1.0, 2));
  q.push(make_read(3.0, 3));
  EXPECT_EQ(q.pop()->request.request_id, 1u);
  EXPECT_EQ(q.pop()->request.request_id, 2u);
  EXPECT_EQ(q.pop()->request.request_id, 3u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(FifoDiscipline, PeekReportsSubmitSeq) {
  FifoDiscipline q;
  q.push(make_read(9.0, 1, 17));
  const auto head = q.peek();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->priority, 0.0);
  EXPECT_EQ(head->submit_seq, 17u);
}

TEST(PriorityDiscipline, PopsLowestPriorityFirst) {
  PriorityDiscipline q;
  q.push(make_read(5.0, 1));
  q.push(make_read(1.0, 2));
  q.push(make_read(3.0, 3));
  EXPECT_EQ(q.pop()->request.request_id, 2u);
  EXPECT_EQ(q.pop()->request.request_id, 3u);
  EXPECT_EQ(q.pop()->request.request_id, 1u);
}

TEST(PriorityDiscipline, FifoWithinEqualPriority) {
  PriorityDiscipline q;
  for (store::RequestId id = 1; id <= 100; ++id) q.push(make_read(7.0, id));
  for (store::RequestId id = 1; id <= 100; ++id) {
    ASSERT_EQ(q.pop()->request.request_id, id);
  }
}

TEST(PriorityDiscipline, PeekMatchesPop) {
  PriorityDiscipline q;
  q.push(make_read(5.0, 1, 100));
  q.push(make_read(2.0, 2, 101));
  const auto head = q.peek();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->priority, 2.0);
  EXPECT_EQ(head->submit_seq, 101u);
  EXPECT_EQ(q.pop()->request.request_id, 2u);
}

TEST(PriorityDiscipline, RandomizedHeapProperty) {
  PriorityDiscipline q;
  util::Rng rng(5);
  for (int i = 0; i < 5000; ++i) q.push(make_read(rng.uniform()));
  double last = -1.0;
  while (auto read = q.pop()) {
    ASSERT_GE(read->request.priority, last);
    last = read->request.priority;
  }
}

TEST(SjfDiscipline, OrdersByExpectedCost) {
  SjfDiscipline q;
  QueuedRead big;
  big.request.request_id = 1;
  big.request.expected_cost = Duration::micros(500);
  QueuedRead small;
  small.request.request_id = 2;
  small.request.expected_cost = Duration::micros(10);
  q.push(std::move(big));
  q.push(std::move(small));
  EXPECT_EQ(q.pop()->request.request_id, 2u);
  EXPECT_EQ(q.pop()->request.request_id, 1u);
}

TEST(DisciplineFactory, KnownNames) {
  EXPECT_EQ(make_discipline("fifo")->name(), "fifo");
  EXPECT_EQ(make_discipline("priority")->name(), "priority");
  EXPECT_EQ(make_discipline("sjf")->name(), "sjf");
  EXPECT_THROW(make_discipline("lifo"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// BackendServer

struct ServerFixture {
  sim::Simulator simulator;
  DeterministicServiceModel model{Duration::micros(100)};
  std::unique_ptr<BackendServer> server;
  std::vector<store::ReadResponse> responses;

  explicit ServerFixture(std::uint32_t cores) {
    BackendServer::Config config;
    config.id = 0;
    config.cores = cores;
    server = std::make_unique<BackendServer>(simulator, config, model, util::Rng(6));
    server->use_private_queue(make_discipline("fifo"));
    server->set_response_handler(
        [this](const store::ReadResponse& response) { responses.push_back(response); });
    server->storage().put_meta(1, 100);
  }

  store::ReadRequest request(store::RequestId id) {
    store::ReadRequest r;
    r.request_id = id;
    r.key = 1;
    return r;
  }
};

TEST(BackendServer, SingleCoreSerializes) {
  ServerFixture f(1);
  f.simulator.schedule_at(Time::zero(), [&] {
    f.server->receive(f.request(1));
    f.server->receive(f.request(2));
  });
  f.simulator.run();
  ASSERT_EQ(f.responses.size(), 2u);
  // Second request waits for the first: completes at 200us.
  EXPECT_EQ(f.simulator.now(), Time::micros(200));
}

TEST(BackendServer, MultiCoreServesInParallel) {
  ServerFixture f(4);
  f.simulator.schedule_at(Time::zero(), [&] {
    for (store::RequestId id = 1; id <= 4; ++id) f.server->receive(f.request(id));
  });
  f.simulator.run();
  ASSERT_EQ(f.responses.size(), 4u);
  EXPECT_EQ(f.simulator.now(), Time::micros(100));  // all in parallel
}

TEST(BackendServer, QueueLengthExcludesInService) {
  ServerFixture f(1);
  f.simulator.schedule_at(Time::zero(), [&] {
    f.server->receive(f.request(1));
    f.server->receive(f.request(2));
    f.server->receive(f.request(3));
    // One in service, two waiting.
    EXPECT_EQ(f.server->queue_length(), 2u);
    EXPECT_EQ(f.server->busy_cores(), 1u);
  });
  f.simulator.run();
}

TEST(BackendServer, FeedbackCarriesQueueAndRate) {
  ServerFixture f(1);
  f.simulator.schedule_at(Time::zero(), [&] {
    f.server->receive(f.request(1));
    f.server->receive(f.request(2));
  });
  f.simulator.run();
  ASSERT_EQ(f.responses.size(), 2u);
  // First response: one request still waiting.
  EXPECT_EQ(f.responses[0].feedback.queue_length, 1u);
  EXPECT_EQ(f.responses[1].feedback.queue_length, 0u);
  // Deterministic 100us service at 1 core -> 10k req/s.
  EXPECT_NEAR(f.responses[1].feedback.service_rate, 10'000.0, 2'500.0);
  EXPECT_EQ(f.responses[0].feedback.service_time.count_nanos(), 100'000);
}

TEST(BackendServer, StatsAccumulate) {
  ServerFixture f(2);
  f.simulator.schedule_at(Time::zero(), [&] {
    for (store::RequestId id = 1; id <= 6; ++id) f.server->receive(f.request(id));
  });
  f.simulator.run();
  EXPECT_EQ(f.server->stats().served, 6u);
  EXPECT_EQ(f.server->stats().busy_time.count_nanos(), 600'000);
}

TEST(BackendServer, MissingKeyServesMinimalValue) {
  ServerFixture f(1);
  store::ReadRequest r;
  r.request_id = 9;
  r.key = 404;  // not populated
  f.simulator.schedule_at(Time::zero(), [&] { f.server->receive(r); });
  f.simulator.run();
  ASSERT_EQ(f.responses.size(), 1u);
  EXPECT_EQ(f.responses[0].value_size, 1u);
}

TEST(BackendServer, RejectsZeroCores) {
  sim::Simulator simulator;
  DeterministicServiceModel model(Duration::micros(1));
  BackendServer::Config config;
  config.cores = 0;
  EXPECT_THROW(BackendServer(simulator, config, model, util::Rng(7)), std::invalid_argument);
}

TEST(BackendServer, ReceiveWithoutQueueThrows) {
  sim::Simulator simulator;
  DeterministicServiceModel model(Duration::micros(1));
  BackendServer::Config config;
  config.cores = 1;
  BackendServer server(simulator, config, model, util::Rng(8));
  store::ReadRequest r;
  EXPECT_THROW(server.receive(r), std::logic_error);
}

// ---------------------------------------------------------------------------
// Queueing-theory validation: the server + Poisson arrivals must match
// M/M/1, M/M/c and M/D/1 analytic results.

struct QueueingHarness {
  sim::Simulator simulator;
  std::unique_ptr<BackendServer> server;
  stats::Summary sojourn_us;
  std::uint64_t completed = 0;

  QueueingHarness(std::uint32_t cores, const ServiceTimeModel& model) {
    BackendServer::Config config;
    config.cores = cores;
    server = std::make_unique<BackendServer>(simulator, config, model, util::Rng(9));
    server->use_private_queue(make_discipline("fifo"));
  }

  /// Runs `n` Poisson arrivals at `lambda` req/s; records sojourn times.
  void run(double lambda, std::uint64_t n) {
    std::unordered_map<store::RequestId, Time> admitted;
    server->set_response_handler([&](const store::ReadResponse& response) {
      sojourn_us.add((simulator.now() - admitted[response.request_id]).as_micros());
      ++completed;
    });
    util::Rng arrivals_rng(10);
    Time t = Time::zero();
    for (store::RequestId id = 0; id < n; ++id) {
      t += Duration::seconds(arrivals_rng.exponential(1.0 / lambda));
      admitted[id] = t;
      simulator.schedule_at(t, [this, id] {
        store::ReadRequest request;
        request.request_id = id;
        request.key = 999;  // unpopulated: size 1
        server->receive(request);
      });
    }
    simulator.run();
  }
};

TEST(QueueingTheory, MM1SojournMatchesAnalytic) {
  // M/M/1: E[T] = 1 / (mu - lambda). mu = 10k/s, lambda = 7k/s -> 333us.
  ExponentialServiceModel model(Duration::micros(100));
  QueueingHarness h(1, model);
  h.run(7000.0, 200'000);
  EXPECT_EQ(h.completed, 200'000u);
  EXPECT_NEAR(h.sojourn_us.mean(), 1e6 / (10'000.0 - 7'000.0), 15.0);
}

TEST(QueueingTheory, MD1WaitMatchesPollaczekKhinchine) {
  // M/D/1: E[W] = rho / (2 mu (1 - rho)); rho = 0.7, mu = 10k/s
  // -> E[W] = 116.7us, E[T] = W + 100us.
  DeterministicServiceModel model(Duration::micros(100));
  QueueingHarness h(1, model);
  h.run(7000.0, 200'000);
  const double rho = 0.7;
  const double mu = 10'000.0;
  const double wait_us = rho / (2.0 * mu * (1.0 - rho)) * 1e6;
  EXPECT_NEAR(h.sojourn_us.mean(), wait_us + 100.0, 8.0);
}

TEST(QueueingTheory, MMcSojournMatchesErlangC) {
  // M/M/4 with per-core mu = 2500/s (mean 400us), lambda = 7000/s
  // (rho = 0.7): Erlang-C waiting probability, then
  // E[W] = C / (c*mu - lambda), E[T] = E[W] + 1/mu.
  ExponentialServiceModel model(Duration::micros(400));
  QueueingHarness h(4, model);
  h.run(7000.0, 200'000);
  const double c = 4.0;
  const double mu = 2500.0;
  const double lambda = 7000.0;
  const double a = lambda / mu;  // offered load = 2.8 erlangs
  double sum = 0.0;
  double term = 1.0;
  for (int k = 0; k < 4; ++k) {
    if (k > 0) term *= a / k;
    sum += term;
  }
  const double a_c_over_cfact = term * a / c;  // a^c / c!
  const double rho = a / c;
  const double erlang_c = a_c_over_cfact / (1.0 - rho) / (sum + a_c_over_cfact / (1.0 - rho));
  const double expected_us = (erlang_c / (c * mu - lambda) + 1.0 / mu) * 1e6;
  EXPECT_NEAR(h.sojourn_us.mean(), expected_us, expected_us * 0.04);
}

TEST(QueueingTheory, MG1WaitMatchesPollaczekKhinchineForSizeDrivenService) {
  // The evaluation's actual service process: deterministic-in-size
  // times over Atikoglu generalized-Pareto value sizes. For M/G/1 FIFO,
  // E[W] = lambda E[S^2] / (2 (1 - rho)) (Pollaczek-Khinchine). We
  // estimate E[S], E[S^2] from the same dataset the server serves.
  util::Rng data_rng(41);
  workload::GeneralizedParetoSizeDist sizes;
  const auto model = SizeLinearServiceModel::calibrate(3500.0, sizes.mean(), Duration::zero());

  // One-key-per-request workload with sizes drawn from the dataset.
  const std::uint64_t kKeys = 40'000;
  std::vector<std::uint32_t> key_sizes(kKeys);
  double s1 = 0.0;
  double s2 = 0.0;
  for (auto& size : key_sizes) {
    size = sizes.sample(data_rng);
    const double t = model.expected(size).as_seconds();
    s1 += t;
    s2 += t * t;
  }
  s1 /= static_cast<double>(kKeys);
  s2 /= static_cast<double>(kKeys);

  QueueingHarness h(1, model);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    h.server->storage().put_meta(k, key_sizes[k]);
  }
  // rho = 0.6 against the empirical mean service time.
  const double lambda = 0.6 / s1;
  std::unordered_map<store::RequestId, Time> admitted;
  stats::Summary wait_us;
  h.server->set_response_handler([&](const store::ReadResponse& response) {
    const double sojourn =
        (h.simulator.now() - admitted[response.request_id]).as_micros();
    const double service = response.feedback.service_time.as_micros();
    wait_us.add(sojourn - service);
  });
  util::Rng arrivals_rng(42);
  util::Rng key_rng(43);
  Time t = Time::zero();
  const std::uint64_t n = 150'000;
  for (store::RequestId id = 0; id < n; ++id) {
    t += Duration::seconds(arrivals_rng.exponential(1.0 / lambda));
    admitted[id] = t;
    const auto key = static_cast<store::KeyId>(
        key_rng.uniform_int(0, static_cast<std::int64_t>(kKeys) - 1));
    h.simulator.schedule_at(t, [&h, id, key] {
      store::ReadRequest request;
      request.request_id = id;
      request.key = key;
      h.server->receive(request);
    });
  }
  h.simulator.run();
  const double rho = lambda * s1;
  const double expected_wait_us = lambda * s2 / (2.0 * (1.0 - rho)) * 1e6;
  // Heavy-tailed E[S^2] converges slowly; 12% tolerance.
  EXPECT_NEAR(wait_us.mean(), expected_wait_us, expected_wait_us * 0.12);
}

TEST(QueueingTheory, UtilizationLawHolds) {
  // Served busy time / elapsed = rho on a single core.
  ExponentialServiceModel model(Duration::micros(100));
  QueueingHarness h(1, model);
  h.run(5000.0, 100'000);
  const double elapsed_sec = h.simulator.now().as_seconds();
  const double busy_sec = h.server->stats().busy_time.as_seconds();
  EXPECT_NEAR(busy_sec / elapsed_sec, 0.5, 0.02);
}

}  // namespace
}  // namespace brb::server
