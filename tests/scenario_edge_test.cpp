// Edge-case and stress tests for the experiment runner: degenerate
// topologies, overload, trace replay, observer hooks, paced arrivals.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/scenario.hpp"
#include "workload/task_gen.hpp"
#include "workload/trace.hpp"

namespace brb::core {
namespace {

ScenarioConfig small_config(SystemKind kind) {
  ScenarioConfig config;
  config.system = kind;
  config.num_tasks = 3000;
  config.key_spec = "zipf:10000:0.9";
  return config;
}

TEST(ScenarioEdge, SingleReplicaRemovesSelectionFreedom) {
  ScenarioConfig config = small_config(SystemKind::kEqualMaxCredits);
  config.replication = 1;
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_completed, config.num_tasks);
}

TEST(ScenarioEdge, FullReplication) {
  ScenarioConfig config = small_config(SystemKind::kEqualMaxModel);
  config.replication = config.cluster.num_servers;  // every server holds everything
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_completed, config.num_tasks);
}

TEST(ScenarioEdge, SingleClient) {
  ScenarioConfig config = small_config(SystemKind::kC3);
  config.num_clients = 1;
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_completed, config.num_tasks);
}

TEST(ScenarioEdge, SingleServerSingleCore) {
  ScenarioConfig config = small_config(SystemKind::kEqualMaxDirect);
  config.cluster.num_servers = 1;
  config.cluster.cores_per_server = 1;
  config.replication = 1;
  config.num_tasks = 500;
  config.utilization = 0.5;
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_completed, 500u);
  EXPECT_EQ(result.server_utilization.size(), 1u);
}

TEST(ScenarioEdge, FixedFanoutOne) {
  // Degenerate tasks: one request each — task latency == request latency.
  ScenarioConfig config = small_config(SystemKind::kEqualMaxCredits);
  config.fanout_spec = "fixed:1";
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.requests_completed, config.num_tasks);
}

TEST(ScenarioEdge, GateDrainsFullyAcrossPolicyMatrix) {
  // RunResult documents gate_held_requests as "held at end of run
  // (should be 0)": whatever the dispatch mechanism (direct, credits,
  // rate-gated C3, global queue), a completed run must not strand
  // requests inside a client gate.
  const SystemKind matrix[] = {
      SystemKind::kC3,
      SystemKind::kEqualMaxCredits,
      SystemKind::kUnifIncrCredits,
      SystemKind::kEqualMaxModel,
      SystemKind::kUnifIncrModel,
      SystemKind::kFifoDirect,
      SystemKind::kRandomFifo,
      SystemKind::kEqualMaxDirect,
      SystemKind::kUnifIncrDirect,
      SystemKind::kFifoModel,
      SystemKind::kRequestSjfDirect,
      SystemKind::kCumSlackCredits,
      SystemKind::kCumSlackModel,
  };
  for (const SystemKind kind : matrix) {
    ScenarioConfig config = small_config(kind);
    config.num_tasks = 1500;
    const RunResult result = run_scenario(config);
    EXPECT_EQ(result.gate_held_requests, 0u) << to_string(kind);
    EXPECT_EQ(result.tasks_completed, config.num_tasks) << to_string(kind);
  }
}

TEST(ScenarioEdge, TransientOverloadStillCompletes) {
  // Offered load 20% above capacity for a short burst: queues grow, the
  // congestion machinery engages, and the drain finishes the run.
  ScenarioConfig config = small_config(SystemKind::kEqualMaxCredits);
  config.utilization = 1.2;
  config.num_tasks = 4000;
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_completed, 4000u);
  // Under overload the latencies must reflect queueing, not hide it.
  EXPECT_GT(result.task_latency.percentile(99).as_millis(), 1.0);
}

TEST(ScenarioEdge, OverloadTriggersCongestionSignals) {
  ScenarioConfig config = small_config(SystemKind::kEqualMaxCredits);
  config.utilization = 1.3;
  config.num_tasks = 12000;
  const RunResult result = run_scenario(config);
  EXPECT_GT(result.congestion_signals, 0u);
}

TEST(ScenarioEdge, PacedArrivalsAreSupported) {
  ScenarioConfig config = small_config(SystemKind::kFifoDirect);
  config.paced_arrivals = true;
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_completed, config.num_tasks);
}

TEST(ScenarioEdge, ServiceNoiseSupported) {
  ScenarioConfig config = small_config(SystemKind::kEqualMaxModel);
  config.service_noise_sigma = 0.3;
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_completed, config.num_tasks);
}

TEST(ScenarioEdge, NetworkJitterSupported) {
  ScenarioConfig config = small_config(SystemKind::kC3);
  config.net_jitter = sim::Duration::micros(20);
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_completed, config.num_tasks);
}

TEST(ScenarioEdge, ZeroWarmupMeasuresEverything) {
  ScenarioConfig config = small_config(SystemKind::kFifoDirect);
  config.warmup_fraction = 0.0;
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_measured, config.num_tasks);
}

TEST(ScenarioEdge, SelectorOverrideIsHonored) {
  ScenarioConfig config = small_config(SystemKind::kEqualMaxDirect);
  config.selector_override = "round-robin";
  EXPECT_EQ(run_scenario(config).tasks_completed, config.num_tasks);
  config.selector_override = "no-such-selector";
  EXPECT_THROW(run_scenario(config), std::invalid_argument);
}

TEST(ScenarioEdge, ObserverHookSeesEveryTask) {
  ScenarioConfig config = small_config(SystemKind::kEqualMaxCredits);
  std::uint64_t observed = 0;
  sim::Duration total = sim::Duration::zero();
  config.on_task_complete = [&](const workload::TaskSpec&, sim::Duration latency) {
    ++observed;
    total += latency;
  };
  const RunResult result = run_scenario(config);
  EXPECT_EQ(observed, result.tasks_completed);
  EXPECT_GT(total.count_nanos(), 0);
}

TEST(ScenarioEdge, KeepRawLatenciesGivesExactPercentiles) {
  ScenarioConfig config = small_config(SystemKind::kFifoModel);
  config.keep_raw_latencies = true;
  const RunResult result = run_scenario(config);
  // Raw percentiles are self-consistent and ordered.
  EXPECT_LE(result.task_latency.percentile(50).count_nanos(),
            result.task_latency.percentile(99).count_nanos());
}

// ---------------------------------------------------------------------------
// Trace replay through the runner

std::vector<workload::TaskSpec> tiny_trace() {
  std::vector<workload::TaskSpec> tasks;
  for (std::uint64_t i = 0; i < 400; ++i) {
    workload::TaskSpec task;
    task.id = i;
    task.client = static_cast<store::ClientId>(i % 18);
    task.arrival = sim::Time::micros(static_cast<double>(100 + i * 97));
    const std::uint32_t fanout = 1 + static_cast<std::uint32_t>(i % 7);
    for (std::uint32_t r = 0; r < fanout; ++r) {
      task.requests.push_back({i * 13 + r, 200 + static_cast<std::uint32_t>(r) * 100});
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

TEST(ScenarioTrace, InMemoryOverrideReplaysExactly) {
  const auto tasks = tiny_trace();
  ScenarioConfig config;
  config.system = SystemKind::kEqualMaxCredits;
  config.tasks_override = &tasks;
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_completed, tasks.size());
  std::uint64_t expected_requests = 0;
  for (const auto& task : tasks) expected_requests += task.requests.size();
  EXPECT_EQ(result.requests_completed, expected_requests);
}

TEST(ScenarioTrace, ReplayIsDeterministicAcrossSystems) {
  const auto tasks = tiny_trace();
  ScenarioConfig config;
  config.tasks_override = &tasks;
  config.system = SystemKind::kEqualMaxModel;
  const RunResult a = run_scenario(config);
  const RunResult b = run_scenario(config);
  EXPECT_EQ(a.task_latency.percentile(99).count_nanos(),
            b.task_latency.percentile(99).count_nanos());
}

TEST(ScenarioTrace, FileRoundTripThroughRunner) {
  const auto tasks = tiny_trace();
  const std::string path = "/tmp/brb_scenario_trace_test.csv";
  workload::TraceWriter::write_file(path, tasks);
  ScenarioConfig config;
  config.system = SystemKind::kC3;
  config.trace_path = path;
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_completed, tasks.size());
  std::remove(path.c_str());
}

TEST(ScenarioTrace, EmptyTraceRejected) {
  const std::vector<workload::TaskSpec> empty;
  ScenarioConfig config;
  config.tasks_override = &empty;
  EXPECT_THROW(run_scenario(config), std::invalid_argument);
}

TEST(ScenarioTrace, MissingTraceFileRejected) {
  ScenarioConfig config;
  config.trace_path = "/nonexistent/brb-trace.csv";
  EXPECT_THROW(run_scenario(config), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Cross-system statistical properties at moderate scale

TEST(ScenarioProperty, ModelBeatsEveryRealizableSystemAtP99) {
  ScenarioConfig base = small_config(SystemKind::kEqualMaxModel);
  base.num_tasks = 15000;
  base.seed = 9;
  const RunResult model = run_scenario(base);
  for (const SystemKind kind :
       {SystemKind::kEqualMaxCredits, SystemKind::kEqualMaxDirect, SystemKind::kC3,
        SystemKind::kFifoDirect}) {
    ScenarioConfig config = base;
    config.system = kind;
    const RunResult other = run_scenario(config);
    EXPECT_LE(model.task_latency.percentile(99).count_nanos(),
              other.task_latency.percentile(99).count_nanos() * 11 / 10)
        << to_string(kind);
  }
}

TEST(ScenarioProperty, TaskAwarenessImprovesMedianOverOblivious) {
  ScenarioConfig brb_config = small_config(SystemKind::kEqualMaxCredits);
  ScenarioConfig fifo_config = small_config(SystemKind::kFifoDirect);
  brb_config.num_tasks = 15000;
  fifo_config.num_tasks = 15000;
  brb_config.seed = 9;
  fifo_config.seed = 9;
  const RunResult brb_run = run_scenario(brb_config);
  const RunResult fifo_run = run_scenario(fifo_config);
  EXPECT_LT(brb_run.task_latency.percentile(50).count_nanos(),
            fifo_run.task_latency.percentile(50).count_nanos());
}

class UtilizationSweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilizationSweep, LatencyMonotoneInLoadForBrb) {
  // Within one seed, p99 at higher load must not be lower than p99 at
  // 50% load (sanity of the load model across the sweep).
  ScenarioConfig lo = small_config(SystemKind::kEqualMaxCredits);
  lo.num_tasks = 8000;
  lo.utilization = 0.5;
  lo.seed = 4;
  ScenarioConfig hi = lo;
  hi.utilization = GetParam();
  const RunResult lo_run = run_scenario(lo);
  const RunResult hi_run = run_scenario(hi);
  EXPECT_GE(hi_run.task_latency.percentile(99).count_nanos() * 12 / 10,
            lo_run.task_latency.percentile(99).count_nanos());
}

INSTANTIATE_TEST_SUITE_P(Loads, UtilizationSweep, ::testing::Values(0.6, 0.7, 0.8));

}  // namespace
}  // namespace brb::core
