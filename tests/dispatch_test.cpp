// Dispatch-plan API tests: the SingleTargetAdapter lift (bit-identity
// with every registered legacy selector), plan shapes for the
// tail-cutting modes, the mode spec grammar (--dispatch and
// --policy-switch payloads), and scenario-level executor invariants —
// hedge arm/cancel accounting, tied loser rejection, k-of-n straggler
// cancellation under worker-thread invariance, and the
// duplicate_work_fraction == 0 guarantee for single-target dispatch.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cli/sweep_plan.hpp"
#include "core/scenario.hpp"
#include "ctrl/dispatch_policy.hpp"
#include "ctrl/policy_runtime.hpp"
#include "ctrl/replica_policy.hpp"
#include "ctrl/signal_table.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace brb {
namespace {

using ctrl::DispatchMode;
using ctrl::DispatchModeConfig;
using ctrl::DispatchPlan;
using sim::Duration;
using sim::Time;

store::ServerFeedback feedback(std::uint32_t queue, double rate) {
  store::ServerFeedback f;
  f.queue_length = queue;
  f.service_rate = rate;
  f.service_time = Duration::micros(300);
  return f;
}

// ---------------------------------------------------------------------------
// SingleTargetAdapter: bit-identity with every registered selector

/// Drives one raw selector and its adapter-lifted twin through an
/// identical synthetic signal history and asserts the decision streams
/// never diverge. Randomized policies get identically-seeded streams.
void expect_adapter_bit_identity(const std::string& policy_name) {
  const ctrl::C3ScoreConfig c3{};
  const auto raw = ctrl::make_replica_policy(policy_name, c3, util::Rng(17));
  ctrl::SingleTargetAdapter adapter(ctrl::make_replica_policy(policy_name, c3, util::Rng(17)));

  ctrl::SignalTable raw_signals;
  ctrl::SignalTable adapter_signals;
  const std::vector<store::ServerId> replicas = {2, 5, 9};
  util::Rng history(23);  // shared history perturbation, applied to both

  for (int round = 0; round < 300; ++round) {
    const Duration cost = Duration::micros(100 + 10 * (round % 7));
    const store::ServerId picked = raw->select(raw_signals, replicas, cost);
    const DispatchPlan plan = adapter.plan(adapter_signals, replicas, cost);

    ASSERT_EQ(plan.mode, DispatchMode::kSingle) << policy_name;
    ASSERT_EQ(plan.num_targets, 1u) << policy_name;
    ASSERT_EQ(plan.needed, 1u) << policy_name;
    ASSERT_EQ(plan.primary(), picked) << policy_name << " diverged at round " << round;

    // Evolve both tables identically: charge the winner, complete an
    // older copy on a rotating server with varying feedback.
    raw_signals.on_send(picked, cost);
    adapter_signals.on_send(picked, cost);
    const store::ServerId done = replicas[history.uniform_u64_below(replicas.size())];
    const store::ServerFeedback fb =
        feedback(1 + round % 5, 8'000.0 + 500.0 * static_cast<double>(round % 4));
    const Duration rtt = Duration::micros(300 + 40 * (round % 9));
    raw_signals.on_response(done, fb, rtt, cost);
    adapter_signals.on_response(done, fb, rtt, cost);
  }
}

TEST(SingleTargetAdapter, BitIdenticalForEveryRegisteredPolicy) {
  // The whole catalog — the adapter must not perturb a single pick.
  std::size_t covered = 0;
  for (const ctrl::ReplicaPolicyInfo& info : ctrl::replica_policy_catalog()) {
    expect_adapter_bit_identity(info.name);
    ++covered;
  }
  EXPECT_GE(covered, 8u);  // the eight registered selectors (at least)
}

TEST(SingleTargetAdapter, CreditAwareWrapperMatchesLegacyDecorator) {
  // The plan-layer credits decorator must reproduce the old
  // select()-layer decorator pick for pick, funded or broke.
  ctrl::CreditAwarePolicy legacy(std::make_unique<ctrl::LeastOutstandingPolicy>());
  ctrl::CreditAwareDispatchPolicy lifted(std::make_unique<ctrl::SingleTargetAdapter>(
      std::make_unique<ctrl::LeastOutstandingPolicy>()));

  ctrl::SignalTable legacy_signals;
  ctrl::SignalTable lifted_signals;
  const std::vector<store::ServerId> replicas = {0, 1, 2};
  util::Rng history(31);
  for (int round = 0; round < 200; ++round) {
    // Rotate balances through all-funded / partially-funded / all-broke.
    for (const store::ServerId s : replicas) {
      const double balance = static_cast<double>((round + s) % 3);
      legacy_signals.set_credit_balance(s, balance);
      lifted_signals.set_credit_balance(s, balance);
    }
    const Duration cost = Duration::micros(150);
    const store::ServerId picked = legacy.select(legacy_signals, replicas, cost);
    const DispatchPlan plan = lifted.plan(lifted_signals, replicas, cost);
    ASSERT_EQ(plan.primary(), picked) << "diverged at round " << round;

    const store::ServerId loaded = replicas[history.uniform_u64_below(replicas.size())];
    legacy_signals.on_send(loaded, cost);
    lifted_signals.on_send(loaded, cost);
  }
}

// ---------------------------------------------------------------------------
// Plan shapes

TEST(DispatchPlan, SingleFactory) {
  const DispatchPlan plan = DispatchPlan::single(7);
  EXPECT_EQ(plan.primary(), 7u);
  EXPECT_EQ(plan.num_targets, 1u);
  EXPECT_EQ(plan.mode, DispatchMode::kSingle);
  EXPECT_EQ(plan.needed, 1u);
  EXPECT_EQ(plan.hedge_delay, Duration::zero());
}

TEST(HedgeDispatchPolicy, PlansDistinctBackupWithQuantileDeadline) {
  ctrl::HedgeDispatchPolicy hedge(
      std::make_unique<ctrl::SingleTargetAdapter>(std::make_unique<ctrl::FirstReplicaPolicy>()),
      0.95, Duration::millis(2));
  ctrl::SignalTable signals;

  // Unseen primary: the deadline falls back to the configured prior.
  DispatchPlan cold = hedge.plan(signals, {3, 8}, Duration::micros(100));
  EXPECT_EQ(cold.mode, DispatchMode::kHedge);
  EXPECT_EQ(cold.num_targets, 2u);
  EXPECT_EQ(cold.needed, 1u);
  EXPECT_EQ(cold.primary(), 3u);
  EXPECT_EQ(cold.targets[1], 8u);
  const double factor = -std::log(1.0 - 0.95);
  EXPECT_NEAR(static_cast<double>(cold.hedge_delay.count_nanos()), factor * 2e6, 1.0);

  // Seen primary: the deadline tracks its response EWMA.
  signals.on_response(3, feedback(1, 10'000), Duration::millis(1), Duration::zero());
  DispatchPlan warm = hedge.plan(signals, {3, 8}, Duration::micros(100));
  EXPECT_NEAR(static_cast<double>(warm.hedge_delay.count_nanos()), factor * 1e6, 1.0);

  // A single replica leaves nobody to hedge onto.
  DispatchPlan lone = hedge.plan(signals, {3}, Duration::micros(100));
  EXPECT_EQ(lone.mode, DispatchMode::kSingle);
  EXPECT_EQ(lone.num_targets, 1u);
}

TEST(HedgeDispatchPolicy, FreshFeedbackSuppressesTheBackup) {
  // Signal-aware skip: feedback younger than fresh_age degrades the
  // plan to single (skipped_fresh set); once the feedback ages past
  // the threshold the full hedge plan returns.
  sim::Simulator sim;
  ctrl::HedgeDispatchPolicy hedge(
      std::make_unique<ctrl::SingleTargetAdapter>(std::make_unique<ctrl::FirstReplicaPolicy>()),
      0.95, Duration::millis(2), /*fresh_age=*/Duration::millis(1), &sim);
  ctrl::SignalTable signals;

  // No feedback yet: nothing to trust, hedge as usual.
  DispatchPlan cold = hedge.plan(signals, {3, 8}, Duration::micros(100));
  EXPECT_EQ(cold.mode, DispatchMode::kHedge);
  EXPECT_FALSE(cold.skipped_fresh);

  // Feedback stamped "now": fresher than 1 ms, so the plan degrades.
  signals.on_response(3, feedback(1, 10'000), Duration::millis(1), Duration::zero(), sim.now());
  DispatchPlan fresh = hedge.plan(signals, {3, 8}, Duration::micros(100));
  EXPECT_EQ(fresh.mode, DispatchMode::kSingle);
  EXPECT_EQ(fresh.num_targets, 1u);
  EXPECT_EQ(fresh.primary(), 3u);
  EXPECT_TRUE(fresh.skipped_fresh);

  // 5 ms later the same feedback is stale: the back-up is armed again.
  sim.run_until(Time::millis(5));
  DispatchPlan stale = hedge.plan(signals, {3, 8}, Duration::micros(100));
  EXPECT_EQ(stale.mode, DispatchMode::kHedge);
  EXPECT_EQ(stale.num_targets, 2u);
  EXPECT_FALSE(stale.skipped_fresh);
}

TEST(HedgeDispatchPolicy, SkipDisabledWithoutThresholdOrClock) {
  sim::Simulator sim;
  ctrl::SignalTable signals;
  signals.on_response(3, feedback(1, 10'000), Duration::millis(1), Duration::zero(), sim.now());

  // fresh_age zero (the default): always hedge, even on fresh feedback.
  ctrl::HedgeDispatchPolicy no_threshold(
      std::make_unique<ctrl::SingleTargetAdapter>(std::make_unique<ctrl::FirstReplicaPolicy>()),
      0.95, Duration::millis(2), Duration::zero(), &sim);
  EXPECT_EQ(no_threshold.plan(signals, {3, 8}, Duration::micros(100)).mode,
            DispatchMode::kHedge);

  // No clock wired: freshness cannot be judged, always hedge.
  ctrl::HedgeDispatchPolicy no_clock(
      std::make_unique<ctrl::SingleTargetAdapter>(std::make_unique<ctrl::FirstReplicaPolicy>()),
      0.95, Duration::millis(2), Duration::millis(1), nullptr);
  EXPECT_EQ(no_clock.plan(signals, {3, 8}, Duration::micros(100)).mode, DispatchMode::kHedge);
}

TEST(TiedDispatchPolicy, PlansTwoDistinctCopies) {
  ctrl::TiedDispatchPolicy tied(
      std::make_unique<ctrl::SingleTargetAdapter>(std::make_unique<ctrl::FirstReplicaPolicy>()));
  ctrl::SignalTable signals;
  const DispatchPlan plan = tied.plan(signals, {4, 6, 1}, Duration::micros(100));
  EXPECT_EQ(plan.mode, DispatchMode::kTied);
  EXPECT_EQ(plan.num_targets, 2u);
  EXPECT_EQ(plan.needed, 1u);
  EXPECT_NE(plan.primary(), plan.targets[1]);
}

TEST(KofnDispatchPolicy, RanksDistinctTargetsAndClampsNeeded) {
  ctrl::KofnDispatchPolicy kofn(
      std::make_unique<ctrl::SingleTargetAdapter>(
          std::make_unique<ctrl::LeastOutstandingPolicy>()),
      3);
  ctrl::SignalTable signals;
  signals.on_send(0, Duration::micros(500));  // 0 is the most loaded

  const std::vector<store::ServerId> replicas = {0, 1, 2, 3, 4};
  const DispatchPlan plan = kofn.plan(signals, replicas, Duration::micros(100));
  EXPECT_EQ(plan.mode, DispatchMode::kKofn);
  EXPECT_EQ(plan.num_targets, DispatchPlan::kMaxTargets);
  EXPECT_EQ(plan.needed, 3u);
  for (std::size_t i = 0; i < plan.num_targets; ++i) {
    for (std::size_t j = i + 1; j < plan.num_targets; ++j) {
      EXPECT_NE(plan.targets[i], plan.targets[j]);
    }
  }
  // Loaded server 0 ranks last of the four chosen.
  EXPECT_NE(plan.primary(), 0u);

  // k clamps to the replica count; a lone replica degenerates to single.
  const DispatchPlan pair = kofn.plan(signals, {1, 2}, Duration::micros(100));
  EXPECT_EQ(pair.needed, 2u);
  EXPECT_EQ(pair.num_targets, 2u);
  const DispatchPlan lone = kofn.plan(signals, {1}, Duration::micros(100));
  EXPECT_EQ(lone.mode, DispatchMode::kSingle);
}

// ---------------------------------------------------------------------------
// Mode grammar

TEST(DispatchModeGrammar, ParsesAndCanonicalizes) {
  EXPECT_EQ(ctrl::parse_dispatch_mode("single").canonical(), "single");
  EXPECT_EQ(ctrl::parse_dispatch_mode("tied").canonical(), "tied");
  EXPECT_EQ(ctrl::parse_dispatch_mode("hedge").canonical(), "hedge:q95");  // default
  EXPECT_EQ(ctrl::parse_dispatch_mode("hedge:q99.9").canonical(), "hedge:q99.9");
  EXPECT_EQ(ctrl::parse_dispatch_mode("kofn").canonical(), "kofn:2");  // default
  EXPECT_EQ(ctrl::parse_dispatch_mode("kofn:4").canonical(), "kofn:4");
  EXPECT_EQ(ctrl::parse_dispatch_mode("hedge:q95:fresh=2").canonical(), "hedge:q95:fresh=2");
  EXPECT_EQ(ctrl::parse_dispatch_mode("hedge:fresh=0.5").canonical(), "hedge:q95:fresh=0.5");

  const DispatchModeConfig fresh_hedge = ctrl::parse_dispatch_mode("hedge:q90:fresh=2");
  EXPECT_EQ(fresh_hedge.mode, DispatchMode::kHedge);
  EXPECT_EQ(fresh_hedge.fresh_age, sim::Duration::millis(2));
  EXPECT_EQ(ctrl::parse_dispatch_mode("hedge").fresh_age, sim::Duration::zero());

  const DispatchModeConfig hedge = ctrl::parse_dispatch_mode("hedge:q90");
  EXPECT_EQ(hedge.mode, DispatchMode::kHedge);
  EXPECT_DOUBLE_EQ(hedge.hedge_quantile, 0.90);
  EXPECT_TRUE(ctrl::parse_dispatch_mode("single").is_single());
  EXPECT_FALSE(hedge.is_single());
}

TEST(DispatchModeGrammar, RejectsWithDidYouMean) {
  try {
    ctrl::parse_dispatch_mode("hedged");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("hedge"), std::string::npos);
  }
  EXPECT_THROW(ctrl::parse_dispatch_mode(""), std::invalid_argument);
  EXPECT_THROW(ctrl::parse_dispatch_mode("tied:2"), std::invalid_argument);
  EXPECT_THROW(ctrl::parse_dispatch_mode("single:x"), std::invalid_argument);
  EXPECT_THROW(ctrl::parse_dispatch_mode("hedge:95"), std::invalid_argument);  // missing 'q'
  EXPECT_THROW(ctrl::parse_dispatch_mode("hedge:q0"), std::invalid_argument);
  EXPECT_THROW(ctrl::parse_dispatch_mode("hedge:q100"), std::invalid_argument);
  EXPECT_THROW(ctrl::parse_dispatch_mode("kofn:0"), std::invalid_argument);
  EXPECT_THROW(ctrl::parse_dispatch_mode("kofn:5"), std::invalid_argument);  // > kMaxTargets
  EXPECT_THROW(ctrl::parse_dispatch_mode("kofn:two"), std::invalid_argument);
}

TEST(DispatchModeGrammar, SpecBindsFleetWideAndPerTenant) {
  const auto fleet = ctrl::parse_dispatch_spec("hedge:q95");
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet[0].tenant, "");
  EXPECT_EQ(fleet[0].mode.canonical(), "hedge:q95");

  const auto mixed = ctrl::parse_dispatch_spec("tenantA:tied,tenantB:kofn:3");
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_EQ(mixed[0].tenant, "tenantA");
  EXPECT_EQ(mixed[0].mode.mode, DispatchMode::kTied);
  EXPECT_EQ(mixed[1].tenant, "tenantB");
  EXPECT_EQ(mixed[1].mode.canonical(), "kofn:3");

  EXPECT_TRUE(ctrl::parse_dispatch_spec("").empty());
  EXPECT_THROW(ctrl::parse_dispatch_spec("tenantA:"), std::invalid_argument);
}

TEST(DispatchModeGrammar, SwitchEpochsCarryModePayloads) {
  const auto epochs = ctrl::parse_policy_switch_spec("t0:random,1s:hedge:q99,2s:batch:kofn:3");
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_EQ(epochs[0].kind, ctrl::PolicySwitch::Kind::kPolicy);
  EXPECT_EQ(epochs[0].policy, "random");

  EXPECT_EQ(epochs[1].kind, ctrl::PolicySwitch::Kind::kMode);
  EXPECT_EQ(epochs[1].at, Time::seconds(1.0));
  EXPECT_TRUE(epochs[1].tenant.empty());
  EXPECT_EQ(epochs[1].mode.canonical(), "hedge:q99");

  EXPECT_EQ(epochs[2].kind, ctrl::PolicySwitch::Kind::kMode);
  EXPECT_EQ(epochs[2].tenant, "batch");
  EXPECT_EQ(epochs[2].mode.canonical(), "kofn:3");

  // Unknown payloads still get a did-you-mean over the joint catalog.
  EXPECT_THROW(ctrl::parse_policy_switch_spec("1s:kofn:9"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PolicyRuntime: mode bindings and mid-run mode switches

TEST(PolicyRuntimeDispatch, ResolvesInitialModesPerTenant) {
  sim::Simulator sim;
  ctrl::PolicyRuntime::Config config;
  config.dispatch_spec = "tied,interactive:hedge:q90";
  config.tenants = {"interactive", "batch"};
  ctrl::PolicyRuntime runtime(sim, config);
  EXPECT_EQ(runtime.initial_mode(store::TenantId{0}).canonical(), "hedge:q90");
  EXPECT_EQ(runtime.initial_mode(store::TenantId{1}).canonical(), "tied");
  EXPECT_TRUE(runtime.may_dispatch_duplicates());
}

TEST(PolicyRuntimeDispatch, SingleModeRunsNeverArmTheExecutor) {
  sim::Simulator sim;
  ctrl::PolicyRuntime::Config config;
  EXPECT_FALSE(ctrl::PolicyRuntime(sim, config).may_dispatch_duplicates());
  config.dispatch_spec = "single";
  EXPECT_FALSE(ctrl::PolicyRuntime(sim, config).may_dispatch_duplicates());
  // A reachable mode epoch arms it even when t=0 is single.
  config.switch_spec = "5s:tied";
  EXPECT_TRUE(ctrl::PolicyRuntime(sim, config).may_dispatch_duplicates());
}

TEST(PolicyRuntimeDispatch, ModeEpochRebindsKeepingPolicyAxis) {
  sim::Simulator sim;
  ctrl::PolicyRuntime::Config config;
  config.default_policy = "round-robin";
  config.switch_spec = "1s:tied";
  ctrl::PolicyRuntime runtime(sim, config);
  const auto endpoint = runtime.bind_client(0, store::TenantId{0}, util::Rng(3));
  EXPECT_EQ(endpoint->name(), "round-robin");
  runtime.start();
  sim.schedule_at(Time::seconds(2.0), [&sim] { sim.stop(); });
  sim.run();
  EXPECT_EQ(endpoint->name(), "tied(round-robin)");
  EXPECT_EQ(runtime.switches_applied(), 1u);
}

// ---------------------------------------------------------------------------
// Scenario-level executor invariants

core::ScenarioConfig dispatch_config(const std::string& spec) {
  core::ScenarioConfig config;
  config.system = core::SystemKind::kFifoDirect;
  config.num_tasks = 2500;
  config.seed = 1;
  config.dispatch_spec = spec;
  return config;
}

TEST(DispatchScenario, SingleModeIsTheLegacyPathWithZeroDuplicateWork) {
  const core::RunResult legacy = core::run_scenario(dispatch_config(""));
  const core::RunResult single = core::run_scenario(dispatch_config("single"));

  // Same decision stream, same physics: bit-equal latency distributions.
  EXPECT_EQ(legacy.task_latency.percentile(99), single.task_latency.percentile(99));
  EXPECT_EQ(legacy.task_latency.mean(), single.task_latency.mean());
  EXPECT_EQ(legacy.requests_completed, single.requests_completed);
  EXPECT_EQ(legacy.events_processed, single.events_processed);

  // "" carries no dispatch metrics; "single" reports them, all zero.
  EXPECT_FALSE(legacy.dispatch_metrics);
  EXPECT_TRUE(single.dispatch_metrics);
  EXPECT_EQ(single.duplicates_sent, 0u);
  EXPECT_EQ(single.duplicates_served, 0u);
  EXPECT_EQ(single.hedges_issued, 0u);
  EXPECT_DOUBLE_EQ(single.duplicate_work_fraction, 0.0);
}

TEST(DispatchScenario, HedgeArmCancelRoundTrip) {
  const core::RunResult run = core::run_scenario(dispatch_config("hedge:q90"));
  EXPECT_EQ(run.tasks_completed, 2500u);
  EXPECT_TRUE(run.dispatch_metrics);

  // Most hedge timers never fire (the primary answers first) …
  EXPECT_GT(run.hedges_cancelled, 0u);
  // … and every fired back-up is a duplicate copy that is later either
  // rejected at dequeue or absorbed as wasted full service. (A copy can
  // still be in flight when the last task completion stops the clock.)
  EXPECT_GT(run.hedges_issued, 0u);
  EXPECT_EQ(run.duplicates_sent, run.hedges_issued);
  EXPECT_LE(run.duplicates_cancelled + run.duplicates_served, run.duplicates_sent);
  EXPECT_GT(run.duplicates_cancelled, 0u);

  // Wins come only from fired hedges.
  EXPECT_LE(run.hedges_won, run.hedges_issued);
  EXPECT_GT(run.duplicate_work_fraction, 0.0);
  EXPECT_LT(run.duplicate_work_fraction, 0.5);
}

TEST(DispatchScenario, FreshSkipSuppressesHedgesAndCountsThem) {
  // A generous freshness window (50 ms at ~sub-ms response times)
  // suppresses most back-ups; the skip counter must record exactly the
  // plans that degraded, and zero without a fresh= spec.
  const core::RunResult always = core::run_scenario(dispatch_config("hedge:q90"));
  EXPECT_EQ(always.hedges_skipped_fresh, 0u);

  const core::RunResult skipping = core::run_scenario(dispatch_config("hedge:q90:fresh=50"));
  EXPECT_EQ(skipping.tasks_completed, 2500u);
  EXPECT_GT(skipping.hedges_skipped_fresh, 0u);
  // Skipped plans arm no timer and send no duplicate, so duplicate
  // work cannot exceed the always-hedge run's.
  EXPECT_LE(skipping.duplicates_sent, always.duplicates_sent);
  EXPECT_LE(skipping.duplicate_work_fraction, always.duplicate_work_fraction);
}

TEST(DispatchScenario, TiedLoserIsAlwaysRejectedAtDequeue) {
  const core::ScenarioConfig config = dispatch_config("tied");
  const core::RunResult run = core::run_scenario(config);
  EXPECT_EQ(run.tasks_completed, 2500u);

  // Every read with >= 2 replicas gets a sibling copy; the first
  // dequeue claims the request, so no duplicate ever reaches service.
  EXPECT_GT(run.duplicates_sent, 0u);
  EXPECT_EQ(run.duplicates_served, 0u);
  EXPECT_DOUBLE_EQ(run.duplicate_work_fraction, 0.0);
  EXPECT_LE(run.duplicates_cancelled, run.duplicates_sent);
  // All but the handful in flight at teardown were rejected.
  EXPECT_GE(run.duplicates_cancelled + config.num_clients, run.duplicates_sent);
  EXPECT_EQ(run.hedges_issued, 0u);  // no timers in tied mode
}

TEST(DispatchScenario, KofnCancelsStragglersAndIsThreadInvariant) {
  core::ScenarioConfig config = dispatch_config("kofn:2");
  const std::vector<std::uint64_t> seeds = {1, 2};
  const core::AggregateResult serial = core::run_seeds(config, seeds, /*parallel=*/false);
  const core::AggregateResult parallel = core::run_seeds(config, seeds, /*parallel=*/true);

  // Worker threads must not move a single sample or counter.
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  EXPECT_EQ(serial.p99_ms.mean(), parallel.p99_ms.mean());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    const core::RunResult& a = serial.runs[i];
    const core::RunResult& b = parallel.runs[i];
    EXPECT_EQ(a.task_latency.percentile(99), b.task_latency.percentile(99));
    EXPECT_EQ(a.duplicates_sent, b.duplicates_sent);
    EXPECT_EQ(a.duplicates_cancelled, b.duplicates_cancelled);
    EXPECT_EQ(a.duplicates_served, b.duplicates_served);
    EXPECT_EQ(a.events_processed, b.events_processed);
  }

  // Fan-out beyond k produces duplicates; stragglers are cancelled at
  // their dequeue, so wasted full services stay a bounded fraction.
  const core::RunResult& run = serial.runs[0];
  EXPECT_GT(run.duplicates_sent, 0u);
  EXPECT_GT(run.duplicates_cancelled, 0u);
  EXPECT_LE(run.duplicates_cancelled + run.duplicates_served, run.duplicates_sent);
  EXPECT_GT(run.duplicate_work_fraction, 0.0);
  EXPECT_LT(run.duplicate_work_fraction, 0.5);
}

TEST(DispatchScenario, DuplicateModesRejectGlobalQueueSystems) {
  core::ScenarioConfig config = dispatch_config("tied");
  config.system = core::SystemKind::kEqualMaxModel;  // global-queue system
  EXPECT_THROW(core::run_scenario(config), std::invalid_argument);
  // single stays compatible everywhere.
  config.dispatch_spec = "single";
  EXPECT_NO_THROW(core::run_scenario(config));
}

// ---------------------------------------------------------------------------
// Sweep plans

TEST(HedgingShootoutScenario, SweepsModesOverBothWorkloads) {
  const util::Flags flags;
  const core::ScenarioConfig base;
  const cli::SweepPlan plan = cli::build_sweep_plan("hedging-shootout", base, {1}, flags);
  ASSERT_EQ(plan.cases.size(), 8u);
  EXPECT_EQ(plan.cases[0].label, "steady/single");
  EXPECT_EQ(plan.cases[1].label, "steady/hedge:q98");
  EXPECT_EQ(plan.cases[2].label, "steady/tied");
  EXPECT_EQ(plan.cases[3].label, "steady/kofn:2");
  EXPECT_EQ(plan.cases[4].label, "diurnal/single");
  EXPECT_TRUE(plan.cases[0].config.dispatch_spec.empty());  // reference case
  EXPECT_EQ(plan.cases[1].config.dispatch_spec, "hedge:q98");
  EXPECT_EQ(plan.cases[1].config.policy_spec, "c3-noderate");
  // The shootout runs on the large-fleet shape, where per-server
  // signals are sparse enough for hedging to pay.
  EXPECT_EQ(plan.cases[0].config.cluster.num_servers, 100u);
  EXPECT_EQ(plan.cases[0].config.num_clients, 1000u);
  EXPECT_TRUE(plan.cases[0].config.arrival_spec.empty());
  EXPECT_EQ(plan.cases[4].config.arrival_spec, "diurnal:0.5:1.5:1");

  core::ScenarioConfig bound;
  bound.dispatch_spec = "tied";
  EXPECT_THROW(cli::build_sweep_plan("hedging-shootout", bound, {1}, flags),
               std::invalid_argument);
  core::ScenarioConfig picked;
  picked.policy_spec = "random";
  EXPECT_THROW(cli::build_sweep_plan("hedging-shootout", picked, {1}, flags),
               std::invalid_argument);
}

TEST(PolicySwitchScenario, ModeEpochsGetStaticModeEndpoints) {
  const util::Flags flags;
  core::ScenarioConfig base;
  base.policy_switch_spec = "t0:random,1s:hedge:q95";
  const cli::SweepPlan plan = cli::build_sweep_plan("policy-switch", base, {1}, flags);
  ASSERT_EQ(plan.cases.size(), 3u);
  EXPECT_EQ(plan.cases[0].label, "static/random");
  EXPECT_TRUE(plan.cases[0].config.dispatch_spec.empty());
  EXPECT_EQ(plan.cases[1].label, "static/random+hedge:q95");
  EXPECT_EQ(plan.cases[1].config.dispatch_spec, "hedge:q95");
  EXPECT_EQ(plan.cases[2].label, "switch/t0:random,1s:hedge:q95");
}

}  // namespace
}  // namespace brb
