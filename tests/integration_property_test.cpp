// Cross-cutting property tests: conservation laws, priority-inversion
// freedom, and workload-parameterized sweeps over the full system.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/scenario.hpp"
#include "workload/task_gen.hpp"

namespace brb::core {
namespace {

// ---------------------------------------------------------------------------
// Parameterized across workload shapes x systems: every combination
// must complete, conserve requests, and produce ordered percentiles.

using ShapeParam = std::tuple<std::string /*fanout*/, std::string /*sizes*/, SystemKind>;

class WorkloadShapeSweep : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(WorkloadShapeSweep, CompletesAndConserves) {
  const auto& [fanout, sizes, system] = GetParam();
  ScenarioConfig config;
  config.system = system;
  config.num_tasks = 2500;
  config.fanout_spec = fanout;
  config.size_spec = sizes;
  config.key_spec = "zipf:10000:0.9";
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.tasks_completed, config.num_tasks);
  EXPECT_GE(result.requests_completed, result.tasks_completed);
  EXPECT_LE(result.task_latency.percentile(50).count_nanos(),
            result.task_latency.percentile(95).count_nanos());
  EXPECT_LE(result.task_latency.percentile(95).count_nanos(),
            result.task_latency.percentile(99).count_nanos());
  // Request latency can never exceed its task's latency... but across
  // distributions only the floor is universal: every latency >= 2 hops.
  EXPECT_GE(result.request_latency.min().count_nanos(),
            (config.net_latency + config.net_latency).count_nanos());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WorkloadShapeSweep,
    ::testing::Combine(::testing::Values("fixed:4", "geometric:8.6", "lognormal:8.6:2.0:512"),
                       ::testing::Values("fixed:512", "gpareto"),
                       ::testing::Values(SystemKind::kC3, SystemKind::kEqualMaxCredits,
                                         SystemKind::kEqualMaxModel)),
    [](const ::testing::TestParamInfo<ShapeParam>& info) {
      std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_" +
                         to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (c == ':' || c == '-' || c == '.') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Conservation: network messages match the request/response/control
// traffic exactly for a system without control messages.

TEST(ConservationLaws, DirectSystemMessageCount) {
  ScenarioConfig config;
  config.system = SystemKind::kFifoDirect;
  config.num_tasks = 2000;
  config.key_spec = "zipf:10000:0.9";
  const RunResult result = run_scenario(config);
  // Direct dispatch: exactly one request + one response per read.
  EXPECT_EQ(result.network_messages, 2 * result.requests_completed);
}

TEST(ConservationLaws, CreditsSystemAddsOnlyControlTraffic) {
  ScenarioConfig config;
  config.system = SystemKind::kEqualMaxCredits;
  config.num_tasks = 2000;
  config.key_spec = "zipf:10000:0.9";
  const RunResult result = run_scenario(config);
  const std::uint64_t data_messages = 2 * result.requests_completed;
  EXPECT_GE(result.network_messages, data_messages);
  // Control traffic (reports + grants + signals) is a sliver: far less
  // than one message per request.
  EXPECT_LT(result.network_messages - data_messages, result.requests_completed);
}

TEST(ConservationLaws, UtilizationMatchesOfferedWork) {
  // Mean utilization over the measured span must track the configured
  // load within the slack introduced by warmup and drain.
  ScenarioConfig config;
  config.system = SystemKind::kFifoModel;
  config.num_tasks = 30000;
  config.utilization = 0.6;
  const RunResult result = run_scenario(config);
  EXPECT_NEAR(result.mean_utilization, 0.6, 0.06);
}

// ---------------------------------------------------------------------------
// Priority semantics end-to-end: with EqualMax, tasks with strictly
// smaller bottlenecks are never starved behind monsters — their p99 is
// far below the heavy tasks' p99.

TEST(PrioritySemantics, SmallTasksBypassLargeOnes) {
  ScenarioConfig config;
  config.system = SystemKind::kEqualMaxCredits;
  config.num_tasks = 20000;
  config.seed = 5;
  stats::LatencyRecorder small_tasks(false);
  stats::LatencyRecorder large_tasks(false);
  config.on_task_complete = [&](const workload::TaskSpec& task, sim::Duration latency) {
    (task.fanout() <= 2 ? small_tasks : large_tasks).record(latency);
  };
  (void)run_scenario(config);
  ASSERT_GT(small_tasks.count(), 0u);
  ASSERT_GT(large_tasks.count(), 0u);
  EXPECT_LT(small_tasks.percentile(99).count_nanos(),
            large_tasks.percentile(99).count_nanos());
}

TEST(PrioritySemantics, ObliviousSystemCouplesSmallToLarge) {
  // Under FIFO the same small tasks suffer with the large ones: their
  // p99 is much closer to (a large fraction of) the overall p99 than
  // under EqualMax. Quantified as a ratio comparison between systems.
  const auto run_with_buckets = [](SystemKind kind) {
    ScenarioConfig config;
    config.system = kind;
    config.num_tasks = 20000;
    config.seed = 5;
    auto small_tasks = std::make_shared<stats::LatencyRecorder>(false);
    config.on_task_complete = [small_tasks](const workload::TaskSpec& task,
                                            sim::Duration latency) {
      if (task.fanout() <= 2) small_tasks->record(latency);
    };
    (void)run_scenario(config);
    return small_tasks->percentile(99).as_millis();
  };
  const double fifo_small_p99 = run_with_buckets(SystemKind::kFifoDirect);
  const double brb_small_p99 = run_with_buckets(SystemKind::kEqualMaxCredits);
  EXPECT_LT(brb_small_p99 * 2.0, fifo_small_p99);
}

// ---------------------------------------------------------------------------
// CumSlack extension: at least as good as UnifIncr on the tail of the
// same workload (it only refines slack within sub-tasks).

TEST(CumSlackExtension, ComparableToUnifIncr) {
  ScenarioConfig a;
  a.system = SystemKind::kUnifIncrCredits;
  a.num_tasks = 15000;
  a.seed = 3;
  ScenarioConfig b = a;
  b.system = SystemKind::kCumSlackCredits;
  const RunResult unifincr = run_scenario(a);
  const RunResult cumslack = run_scenario(b);
  // Allow 15% slack either way: the claim is "comparable, not broken".
  EXPECT_LT(cumslack.task_latency.percentile(99).count_nanos(),
            unifincr.task_latency.percentile(99).count_nanos() * 115 / 100);
}

}  // namespace
}  // namespace brb::core
