// Tests for the ideal global-queue model (the paper's "model"
// realization) and the Figure 1 executable example.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/fig1.hpp"
#include "core/global_queue.hpp"
#include "server/backend_server.hpp"
#include "server/service_model.hpp"
#include "sim/simulator.hpp"
#include "store/partitioner.hpp"
#include "util/rng.hpp"

namespace brb::core {
namespace {

using sim::Duration;
using sim::Time;

struct ModelFixture {
  sim::Simulator simulator;
  store::RingPartitioner partitioner{3, 2};  // groups {0,1},{1,2},{2,0}
  server::DeterministicServiceModel model{Duration::micros(100)};
  std::vector<std::unique_ptr<server::BackendServer>> servers;
  std::unique_ptr<GlobalQueueModel> queue;
  std::vector<std::pair<store::ServerId, store::RequestId>> completions;

  ModelFixture() {
    queue = std::make_unique<GlobalQueueModel>(
        partitioner, [] { return server::make_discipline("priority"); });
    std::vector<server::BackendServer*> raw;
    for (store::ServerId s = 0; s < 3; ++s) {
      server::BackendServer::Config config;
      config.id = s;
      config.cores = 1;
      servers.push_back(
          std::make_unique<server::BackendServer>(simulator, config, model, util::Rng(s + 1)));
      servers.back()->set_response_handler([this, s](const store::ReadResponse& response) {
        completions.emplace_back(s, response.request_id);
      });
      raw.push_back(servers.back().get());
    }
    queue->attach_servers(std::move(raw));
  }

  server::QueuedRead read(store::RequestId id, store::Priority priority) {
    server::QueuedRead r;
    r.request.request_id = id;
    r.request.priority = priority;
    r.request.key = 42;
    r.enqueued_at = simulator.now();
    return r;
  }
};

TEST(GlobalQueueModel, IdleServerPullsImmediately) {
  ModelFixture f;
  f.simulator.schedule_at(Time::zero(), [&] { f.queue->submit(f.read(1, 0.0), 0); });
  f.simulator.run();
  ASSERT_EQ(f.completions.size(), 1u);
  EXPECT_EQ(f.simulator.now(), Time::micros(100));
}

TEST(GlobalQueueModel, OnlyGroupMembersServe) {
  ModelFixture f;
  // Group 1 = servers {1, 2}; server 0 must never serve it.
  f.simulator.schedule_at(Time::zero(), [&] {
    for (store::RequestId id = 0; id < 20; ++id) f.queue->submit(f.read(id, 0.0), 1);
  });
  f.simulator.run();
  ASSERT_EQ(f.completions.size(), 20u);
  for (const auto& [server, id] : f.completions) {
    EXPECT_NE(server, 0u) << "server 0 served a group-1 request";
  }
}

TEST(GlobalQueueModel, PriorityOrderAcrossGroups) {
  ModelFixture f;
  // Saturate server 0's two groups (0 and 2) while it is busy, then
  // check it pulls strictly by priority across both groups.
  f.simulator.schedule_at(Time::zero(), [&] {
    f.queue->submit(f.read(100, 0.0), 0);  // occupies server 0
    f.queue->submit(f.read(101, 0.0), 1);  // occupies server 1
    f.queue->submit(f.read(102, 0.0), 1);  // occupies server 2 (group 1 = {1,2})
    f.queue->submit(f.read(1, 5.0), 0);
    f.queue->submit(f.read(2, 1.0), 2);
    f.queue->submit(f.read(3, 3.0), 0);
  });
  f.simulator.run();
  ASSERT_EQ(f.completions.size(), 6u);
  // Find the order in which the contended requests finished.
  std::vector<store::RequestId> contended;
  for (const auto& [server, id] : f.completions) {
    if (id < 100) contended.push_back(id);
  }
  EXPECT_EQ(contended, (std::vector<store::RequestId>{2, 3, 1}));
}

TEST(GlobalQueueModel, FifoTieBreakBySubmission) {
  ModelFixture f;
  f.simulator.schedule_at(Time::zero(), [&] {
    f.queue->submit(f.read(100, 0.0), 0);  // occupy server 0
    // Keep servers 1 and 2 on group-1 filler for three service slots so
    // only server 0 pulls the contended requests.
    for (store::RequestId id = 101; id <= 106; ++id) f.queue->submit(f.read(id, 0.0), 1);
    // Same priority, groups 0 and 2 (both servable by server 0):
    // submission order must decide.
    f.queue->submit(f.read(1, 7.0), 0);
    f.queue->submit(f.read(2, 7.0), 2);
    f.queue->submit(f.read(3, 7.0), 0);
  });
  f.simulator.run();
  std::vector<store::RequestId> contended;
  for (const auto& [server, id] : f.completions) {
    if (id < 100) contended.push_back(id);
  }
  EXPECT_EQ(contended, (std::vector<store::RequestId>{1, 2, 3}));
}

TEST(GlobalQueueModel, BacklogCountsServableWork) {
  ModelFixture f;
  f.simulator.schedule_at(Time::zero(), [&] {
    f.queue->submit(f.read(100, 0.0), 0);
    f.queue->submit(f.read(101, 0.0), 1);
    f.queue->submit(f.read(102, 0.0), 1);
    f.queue->submit(f.read(1, 1.0), 0);
    f.queue->submit(f.read(2, 1.0), 1);
    // Server 0 belongs to groups 0 and 2: sees only the group-0 item.
    EXPECT_EQ(f.queue->backlog(0), 1u);
    // Server 1 belongs to groups 0 and 1: sees both.
    EXPECT_EQ(f.queue->backlog(1), 2u);
    EXPECT_EQ(f.queue->total_backlog(), 2u);
  });
  f.simulator.run();
  EXPECT_EQ(f.queue->total_backlog(), 0u);
}

TEST(GlobalQueueModel, RejectsBadGroupAndServer) {
  ModelFixture f;
  EXPECT_THROW(f.queue->submit(f.read(1, 0.0), 99), std::out_of_range);
  EXPECT_FALSE(f.queue->next_for(99).has_value());
  EXPECT_EQ(f.queue->backlog(99), 0u);
}

// ---------------------------------------------------------------------------
// Figure 1 (executable)

TEST(Fig1, ObliviousScheduleDelaysT2) {
  const Fig1Result result = run_fig1("fifo");
  EXPECT_NEAR(result.t2_completion_units, 2.0, 0.2);
  EXPECT_NEAR(result.t1_completion_units, 2.0, 0.2);
}

TEST(Fig1, EqualMaxAchievesOptimalSchedule) {
  const Fig1Result result = run_fig1("equalmax");
  EXPECT_NEAR(result.t2_completion_units, 1.0, 0.2);
  EXPECT_NEAR(result.t1_completion_units, 2.0, 0.2);
}

TEST(Fig1, UnifIncrAchievesOptimalSchedule) {
  const Fig1Result result = run_fig1("unifincr");
  EXPECT_NEAR(result.t2_completion_units, 1.0, 0.2);
  EXPECT_NEAR(result.t1_completion_units, 2.0, 0.2);
}

TEST(Fig1, TaskAwareNeverDelaysT1) {
  const Fig1Result fifo = run_fig1("fifo");
  const Fig1Result equalmax = run_fig1("equalmax");
  // The optimal schedule improves T2 by a full unit...
  EXPECT_LT(equalmax.t2_completion_units, fifo.t2_completion_units - 0.5);
  // ...while T1 is unchanged (its bottleneck is S2 either way).
  EXPECT_NEAR(equalmax.t1_completion_units, fifo.t1_completion_units, 0.25);
}

TEST(Fig1, ScheduleListsAllFiveRequests) {
  const Fig1Result result = run_fig1("equalmax");
  EXPECT_EQ(result.schedule.size(), 5u);
}

TEST(Fig1, EOnS1BeforeAUnderTaskAwareness) {
  const Fig1Result result = run_fig1("unifincr");
  double e_end = 0.0;
  double a_end = 0.0;
  for (const auto& entry : result.schedule) {
    if (entry.key == "E") e_end = entry.end_units;
    if (entry.key == "A") a_end = entry.end_units;
  }
  EXPECT_LT(e_end, a_end);
}

}  // namespace
}  // namespace brb::core
