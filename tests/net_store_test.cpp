// Tests for the network model and the data-store substrate
// (partitioners, storage engine).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "store/partitioner.hpp"
#include "store/storage_engine.hpp"
#include "util/rng.hpp"

namespace brb {
namespace {

using sim::Duration;
using sim::Time;

// ---------------------------------------------------------------------------
// Network

TEST(Network, DeliversAfterOneWayLatency) {
  sim::Simulator simulator;
  net::Network network(simulator, {Duration::micros(50), Duration::zero()}, util::Rng(1));
  Time delivered = Time::zero();
  network.send(0, 1, 100, [&] { delivered = simulator.now(); });
  simulator.run();
  EXPECT_EQ(delivered, Time::micros(50));
}

TEST(Network, CountsMessagesAndBytes) {
  sim::Simulator simulator;
  net::Network network(simulator, {Duration::micros(50), Duration::zero()}, util::Rng(2));
  network.send(0, 1, 100, [] {});
  network.send(1, 0, 250, [] {});
  simulator.run();
  EXPECT_EQ(network.stats().messages_sent, 2u);
  EXPECT_EQ(network.stats().bytes_sent, 350u);
}

TEST(Network, PairLatencyOverride) {
  sim::Simulator simulator;
  net::Network network(simulator, {Duration::micros(50), Duration::zero()}, util::Rng(3));
  network.set_pair_latency(0, 1, Duration::micros(200));
  EXPECT_EQ(network.latency(0, 1), Duration::micros(200));
  EXPECT_EQ(network.latency(1, 0), Duration::micros(50));  // directional
  Time delivered = Time::zero();
  network.send(0, 1, 10, [&] { delivered = simulator.now(); });
  simulator.run();
  EXPECT_EQ(delivered, Time::micros(200));
}

TEST(Network, JitterStaysWithinBound) {
  sim::Simulator simulator;
  net::Network network(simulator, {Duration::micros(50), Duration::micros(20)}, util::Rng(4));
  std::vector<Time> deliveries;
  for (int i = 0; i < 200; ++i) {
    network.send(0, static_cast<net::NodeId>(i + 1), 10,
                 [&] { deliveries.push_back(simulator.now()); });
  }
  simulator.run();
  for (const Time t : deliveries) {
    EXPECT_GE(t, Time::micros(50));
    EXPECT_LE(t, Time::micros(70));
  }
}

TEST(Network, PerPairFifoEvenWithJitter) {
  sim::Simulator simulator;
  net::Network network(simulator, {Duration::micros(50), Duration::micros(40)}, util::Rng(5));
  std::vector<int> order;
  // Staggered sends on one pair; jitter could reorder without the
  // FIFO reservation.
  for (int i = 0; i < 50; ++i) {
    simulator.schedule_at(Time::micros(i), [&network, &order, i] {
      network.send(3, 4, 10, [&order, i] { order.push_back(i); });
    });
  }
  simulator.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Network, RejectsNegativeLatency) {
  sim::Simulator simulator;
  EXPECT_THROW(net::Network(simulator,
                            {Duration::micros(50) - Duration::micros(100), Duration::zero()},
                            util::Rng(6)),
               std::invalid_argument);
  net::Network network(simulator, {Duration::micros(50), Duration::zero()}, util::Rng(7));
  EXPECT_THROW(network.set_pair_latency(0, 1, Duration::zero() - Duration::micros(1)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// hash_key / RingPartitioner

TEST(HashKey, DeterministicAndMixing) {
  EXPECT_EQ(store::hash_key(42), store::hash_key(42));
  std::set<std::uint64_t> hashes;
  for (store::KeyId k = 0; k < 10000; ++k) hashes.insert(store::hash_key(k));
  EXPECT_EQ(hashes.size(), 10000u);  // no collisions on small range
}

TEST(RingPartitioner, PaperTopology) {
  store::RingPartitioner partitioner(9, 3);
  EXPECT_EQ(partitioner.num_groups(), 9u);
  EXPECT_EQ(partitioner.num_servers(), 9u);
  EXPECT_EQ(partitioner.replication_factor(), 3u);
  // Group g holds servers {g, g+1, g+2 mod 9}.
  const auto& group7 = partitioner.replicas_of(7);
  EXPECT_EQ(group7, (std::vector<store::ServerId>{7, 8, 0}));
}

TEST(RingPartitioner, EveryServerInExactlyRGroups) {
  store::RingPartitioner partitioner(9, 3);
  std::map<store::ServerId, int> membership;
  for (store::GroupId g = 0; g < partitioner.num_groups(); ++g) {
    for (const store::ServerId s : partitioner.replicas_of(g)) ++membership[s];
  }
  ASSERT_EQ(membership.size(), 9u);
  for (const auto& [server, count] : membership) EXPECT_EQ(count, 3);
}

TEST(RingPartitioner, KeyGroupsBalanced) {
  store::RingPartitioner partitioner(9, 3);
  std::map<store::GroupId, int> counts;
  for (store::KeyId k = 0; k < 90000; ++k) ++counts[partitioner.group_of(k)];
  for (const auto& [group, count] : counts) {
    EXPECT_NEAR(count, 10000, 600) << "group " << group;
  }
}

TEST(RingPartitioner, ReplicasForKeyConsistent) {
  store::RingPartitioner partitioner(9, 3);
  for (store::KeyId k = 0; k < 100; ++k) {
    EXPECT_EQ(partitioner.replicas_for_key(k),
              partitioner.replicas_of(partitioner.group_of(k)));
  }
}

TEST(RingPartitioner, ReplicationOne) {
  store::RingPartitioner partitioner(3, 1);
  for (store::GroupId g = 0; g < 3; ++g) {
    EXPECT_EQ(partitioner.replicas_of(g).size(), 1u);
  }
}

TEST(RingPartitioner, FullReplication) {
  store::RingPartitioner partitioner(3, 3);
  for (store::GroupId g = 0; g < 3; ++g) {
    EXPECT_EQ(partitioner.replicas_of(g).size(), 3u);
  }
}

TEST(RingPartitioner, RejectsBadConfig) {
  EXPECT_THROW(store::RingPartitioner(0, 1), std::invalid_argument);
  EXPECT_THROW(store::RingPartitioner(3, 0), std::invalid_argument);
  EXPECT_THROW(store::RingPartitioner(3, 4), std::invalid_argument);
  store::RingPartitioner ok(3, 2);
  EXPECT_THROW(ok.replicas_of(3), std::out_of_range);
}

// ---------------------------------------------------------------------------
// ConsistentHashPartitioner

std::vector<store::ServerId> servers_0_to(std::uint32_t n) {
  std::vector<store::ServerId> servers;
  for (store::ServerId s = 0; s < n; ++s) servers.push_back(s);
  return servers;
}

TEST(ConsistentHash, ReplicaSetsAreDistinctServers) {
  store::ConsistentHashPartitioner partitioner(servers_0_to(9), 3, 32);
  for (store::GroupId g = 0; g < partitioner.num_groups(); ++g) {
    const auto& replicas = partitioner.replicas_of(g);
    ASSERT_EQ(replicas.size(), 3u);
    std::set<store::ServerId> unique(replicas.begin(), replicas.end());
    ASSERT_EQ(unique.size(), 3u);
  }
}

TEST(ConsistentHash, OwnershipRoughlyBalanced) {
  store::ConsistentHashPartitioner partitioner(servers_0_to(9), 3, 128);
  const auto ownership = partitioner.ownership(50'000);
  for (const auto& [server, share] : ownership) {
    EXPECT_GT(share, 0.04) << "server " << server;
    EXPECT_LT(share, 0.22) << "server " << server;
  }
}

TEST(ConsistentHash, MinimalDisruptionOnAdd) {
  store::ConsistentHashPartitioner before(servers_0_to(9), 3, 64);
  store::ConsistentHashPartitioner after(servers_0_to(9), 3, 64);
  after.add_server(9);
  int moved = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    const auto key = static_cast<store::KeyId>(i) * 40503ULL;
    if (before.replicas_for_key(key).front() != after.replicas_for_key(key).front()) ++moved;
  }
  // Adding 1 of 10 servers should move roughly 1/10th of primaries,
  // certainly far less than half.
  EXPECT_LT(moved, probes / 2);
  EXPECT_GT(moved, 0);
}

TEST(ConsistentHash, RemoveRestoresCapacityInvariant) {
  store::ConsistentHashPartitioner partitioner(servers_0_to(5), 3, 32);
  partitioner.remove_server(4);
  EXPECT_EQ(partitioner.num_servers(), 4u);
  EXPECT_THROW(partitioner.remove_server(4), std::invalid_argument);
  // Cannot drop below the replication factor.
  partitioner.remove_server(3);
  EXPECT_THROW(partitioner.remove_server(2), std::invalid_argument);
}

TEST(ConsistentHash, AddDuplicateRejected) {
  store::ConsistentHashPartitioner partitioner(servers_0_to(3), 2, 16);
  EXPECT_THROW(partitioner.add_server(1), std::invalid_argument);
}

TEST(ConsistentHash, RejectsBadConfig) {
  EXPECT_THROW(store::ConsistentHashPartitioner({}, 1, 16), std::invalid_argument);
  EXPECT_THROW(store::ConsistentHashPartitioner(servers_0_to(2), 3, 16), std::invalid_argument);
  EXPECT_THROW(store::ConsistentHashPartitioner(servers_0_to(2), 1, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// StorageEngine

TEST(StorageEngine, PutMetaAndLookup) {
  store::StorageEngine engine;
  engine.put_meta(1, 100);
  EXPECT_TRUE(engine.contains(1));
  EXPECT_EQ(engine.size_of(1), 100u);
  EXPECT_FALSE(engine.size_of(2).has_value());
  EXPECT_EQ(engine.num_keys(), 1u);
  EXPECT_EQ(engine.stored_bytes(), 100u);
}

TEST(StorageEngine, OverwriteAdjustsBytes) {
  store::StorageEngine engine;
  engine.put_meta(1, 100);
  engine.put_meta(1, 250);
  EXPECT_EQ(engine.stored_bytes(), 250u);
  EXPECT_EQ(engine.num_keys(), 1u);
}

TEST(StorageEngine, PayloadModeStoresBytes) {
  store::StorageEngine engine(true);
  engine.put(7, "hello world");
  const auto value = engine.get(7);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->payload, "hello world");
  EXPECT_EQ(value->size_bytes, 11u);
}

TEST(StorageEngine, MetadataModeDropsPayload) {
  store::StorageEngine engine(false);
  engine.put(7, "hello world");
  const auto value = engine.get(7);
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(value->payload.empty());
  EXPECT_EQ(value->size_bytes, 11u);
}

TEST(StorageEngine, ScatteredKeysPastAllowanceStayCorrect) {
  // A server holding a sparse slice of a huge keyspace must not grow
  // the dense array out to the largest key: beyond the growth
  // allowance, scattered keys land in the hash map, and every lookup
  // still answers through the size_of fallthrough.
  store::StorageEngine engine;
  const store::KeyId stride = 50'000;  // far beyond allowance per key
  for (store::KeyId k = 0; k < 40; ++k) {
    engine.put_meta(k * stride + 3, static_cast<std::uint32_t>(k + 1));
  }
  EXPECT_EQ(engine.num_keys(), 40u);
  for (store::KeyId k = 0; k < 40; ++k) {
    ASSERT_TRUE(engine.contains(k * stride + 3));
    EXPECT_EQ(engine.size_of(k * stride + 3), static_cast<std::uint32_t>(k + 1));
    EXPECT_FALSE(engine.contains(k * stride + 4));
  }
}

TEST(StorageEngine, AscendingDenseLoadThenOverwriteAndErase) {
  // The paper-scale shape: ascending key load stays dense-eligible the
  // whole way, and overwrite/erase keep accounting consistent even for
  // keys that crossed between the two structures.
  store::StorageEngine engine;
  for (store::KeyId k = 0; k < 5000; ++k) engine.put_meta(k, 16);
  EXPECT_EQ(engine.num_keys(), 5000u);
  EXPECT_EQ(engine.stored_bytes(), 5000u * 16);

  // Overwrite a dense key with a sparse-only size (UINT32_MAX forces
  // the hash-map path), then back again.
  const auto huge = std::numeric_limits<std::uint32_t>::max();
  engine.put_meta(42, huge);
  EXPECT_EQ(engine.size_of(42), huge);
  engine.put_meta(42, 16);
  EXPECT_EQ(engine.size_of(42), 16u);
  EXPECT_EQ(engine.num_keys(), 5000u);
  EXPECT_EQ(engine.stored_bytes(), 5000u * 16);

  EXPECT_TRUE(engine.erase(4999));
  EXPECT_FALSE(engine.contains(4999));
  EXPECT_EQ(engine.num_keys(), 4999u);
}

TEST(StorageEngine, EraseReleasesBytes) {
  store::StorageEngine engine;
  engine.put_meta(1, 100);
  engine.put_meta(2, 50);
  EXPECT_TRUE(engine.erase(1));
  EXPECT_FALSE(engine.erase(1));
  EXPECT_EQ(engine.stored_bytes(), 50u);
  EXPECT_EQ(engine.num_keys(), 1u);
}

}  // namespace
}  // namespace brb
