// Remaining engine edge cases: queue clearing, histogram error bounds,
// degenerate network parameters, RNG extremes.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"
#include "util/rng.hpp"

namespace brb {
namespace {

using sim::Duration;
using sim::Time;

TEST(EventQueueEdge, ClearDropsEverything) {
  sim::EventQueue queue;
  int fired = 0;
  for (int i = 0; i < 10; ++i) queue.push(Time::micros(i), [&] { ++fired; });
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueEdge, SizeTracksCancellations) {
  sim::EventQueue queue;
  const auto a = queue.push(Time::micros(1), [] {});
  const auto b = queue.push(Time::micros(2), [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.size(), 1u);
  queue.cancel(b);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueEdge, InterleavedPushPopKeepsOrder) {
  sim::EventQueue queue;
  std::vector<int> order;
  queue.push(Time::micros(10), [&] { order.push_back(10); });
  queue.push(Time::micros(5), [&] { order.push_back(5); });
  auto entry = queue.pop();
  entry->fn();  // 5
  queue.push(Time::micros(7), [&] { order.push_back(7); });
  queue.push(Time::micros(3), [&] { order.push_back(3); });  // "past" is legal here
  while ((entry = queue.pop())) entry->fn();
  EXPECT_EQ(order, (std::vector<int>{5, 3, 7, 10}));
}

TEST(SimulatorEdge, RunOnEmptyQueueReturnsZero) {
  sim::Simulator simulator;
  EXPECT_EQ(simulator.run(), 0u);
  EXPECT_EQ(simulator.now(), Time::zero());
}

TEST(SimulatorEdge, ZeroDelayScheduleRunsAtCurrentInstant) {
  sim::Simulator simulator;
  Time seen = Time::max();
  simulator.schedule_at(Time::micros(5), [&] {
    simulator.schedule_after(Duration::zero(), [&] { seen = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(seen, Time::micros(5));
}

TEST(SimulatorEdge, StopThenRunResumes) {
  sim::Simulator simulator;
  int fired = 0;
  simulator.schedule_at(Time::micros(1), [&] {
    ++fired;
    simulator.stop();
  });
  simulator.schedule_at(Time::micros(2), [&] { ++fired; });
  simulator.run();
  EXPECT_EQ(fired, 1);
  simulator.run();  // resumes with the remaining event
  EXPECT_EQ(fired, 2);
}

TEST(HistogramEdge, RelativeErrorBoundIsAdvertised) {
  stats::Histogram h3(1'000'000'000, 3);
  EXPECT_LE(h3.max_relative_error(), 1e-3);
  stats::Histogram h1(1'000'000'000, 1);
  EXPECT_LE(h1.max_relative_error(), 1e-1);
  EXPECT_GT(h1.max_relative_error(), h3.max_relative_error());
}

TEST(HistogramEdge, QuantileExtremes) {
  stats::Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i * 1000);
  EXPECT_LE(h.value_at_quantile(0.0), 1010);
  EXPECT_GE(h.value_at_quantile(1.0), 99'000);
}

TEST(NetworkEdge, ZeroLatencyDeliversSameInstant) {
  sim::Simulator simulator;
  net::Network network(simulator, {Duration::zero(), Duration::zero()}, util::Rng(1));
  Time delivered = Time::max();
  simulator.schedule_at(Time::micros(3), [&] {
    network.send(0, 1, 1, [&] { delivered = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(delivered, Time::micros(3));
}

TEST(RngEdge, UniformIntFullRangeDoesNotHang) {
  util::Rng rng(3);
  // Full 64-bit span takes the special path.
  (void)rng.uniform_int(std::numeric_limits<std::int64_t>::min(),
                        std::numeric_limits<std::int64_t>::max());
}

TEST(RngEdge, BoundedParetoTightBounds) {
  util::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.bounded_pareto(2.0, 10.0, 11.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 11.0);
  }
}

TEST(DurationEdge, NegativeDurationsBehave) {
  const Duration d = Duration::micros(10) - Duration::micros(25);
  EXPECT_TRUE(d.is_negative());
  EXPECT_EQ((-d).count_nanos(), 15'000);
  EXPECT_LT(d, Duration::zero());
}

}  // namespace
}  // namespace brb
