// Quickstart: the ten-line tour of the BRB library.
//
// Builds the paper's cluster (9 servers x 4 cores, 18 application
// servers), runs BRB's EqualMax-over-credits system on a synthetic
// SoundCloud-like workload at 70% utilization, and prints the task
// latency distribution.
//
//   $ ./example_quickstart
#include <iostream>

#include "core/scenario.hpp"

int main() {
  brb::core::ScenarioConfig config;           // paper defaults throughout
  config.system = brb::core::SystemKind::kEqualMaxCredits;
  config.num_tasks = 50'000;                  // short demo run
  config.seed = 42;

  std::cout << "Running " << to_string(config.system) << " on "
            << config.cluster.num_servers << " servers / " << config.num_clients
            << " clients at " << config.utilization * 100 << "% utilization...\n";

  const brb::core::RunResult result = brb::core::run_scenario(config);
  const brb::core::LatencySummary summary = brb::core::summarize_tasks(result);

  std::cout << "tasks completed : " << result.tasks_completed << "\n"
            << "requests served : " << result.requests_completed << "\n"
            << "median latency  : " << summary.p50_ms << " ms\n"
            << "95th percentile : " << summary.p95_ms << " ms\n"
            << "99th percentile : " << summary.p99_ms << " ms\n"
            << "mean utilization: " << result.mean_utilization * 100 << " %\n"
            << "simulated time  : " << result.sim_duration.as_seconds() << " s ("
            << result.events_processed << " events in " << result.wall_seconds << " s wall)\n";
  return 0;
}
