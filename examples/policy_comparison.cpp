// Side-by-side policy comparison on one workload.
//
// Walks through the design space the library exposes — replica
// selection, server scheduling, task-awareness, dispatch control — by
// running a ladder of systems from "random + FIFO" up to the ideal
// global queue, with one-line explanations of what each step adds.
//
//   $ ./example_policy_comparison
#include <iostream>
#include <vector>

#include "core/scenario.hpp"
#include "stats/table.hpp"

int main() {
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;

  struct Step {
    SystemKind kind;
    const char* what_it_adds;
  };
  const std::vector<Step> ladder = {
      {SystemKind::kRandomFifo, "baseline: random replica, FIFO servers"},
      {SystemKind::kFifoDirect, "+ load-aware replica selection (least outstanding)"},
      {SystemKind::kC3, "+ C3: cubic replica ranking + rate control (NSDI'15)"},
      {SystemKind::kRequestSjfDirect, "+ size-aware scheduling (per-request SJF)"},
      {SystemKind::kEqualMaxDirect, "+ task-aware priorities (BRB EqualMax)"},
      {SystemKind::kEqualMaxCredits, "+ credits admission control (realizable BRB)"},
      {SystemKind::kEqualMaxModel, "ideal: shared global priority queue (unrealizable)"},
  };

  ScenarioConfig base;
  base.num_tasks = 40'000;
  base.seed = 11;

  std::cout << "Policy ladder on one workload (" << base.num_tasks << " tasks, "
            << base.utilization * 100 << "% load, mean fan-out 8.6):\n\n";
  brb::stats::Table table({"system", "median", "p95", "p99", "what this step adds"});
  for (const Step& step : ladder) {
    ScenarioConfig config = base;
    config.system = step.kind;
    const brb::core::RunResult result = brb::core::run_scenario(config);
    const brb::core::LatencySummary summary = brb::core::summarize_tasks(result);
    table.add_row({to_string(step.kind), brb::stats::fmt_millis(summary.p50_ms),
                   brb::stats::fmt_millis(summary.p95_ms),
                   brb::stats::fmt_millis(summary.p99_ms), step.what_it_adds});
  }
  table.print(std::cout);

  std::cout << "\nReading guide: each row reuses the same cluster, workload and seed;\n"
               "only the policy stack changes. Task-aware priorities are the big\n"
               "median/p95 lever; pooling (the ideal model) is the tail lever that\n"
               "the credits scheme approximates while staying decentralized.\n";
  return 0;
}
