// Elastic clusters with consistent hashing.
//
// The paper's evaluation uses a fixed 9-server ring, but a production
// data store grows and shrinks. This example exercises the library's
// consistent-hash partitioner: it shows ownership balance across
// virtual-node counts and measures how little data moves when servers
// join or leave — the property that makes online re-scaling practical.
//
//   $ ./example_elastic_cluster
#include <iostream>
#include <vector>

#include "stats/table.hpp"
#include "store/partitioner.hpp"

namespace {

std::vector<brb::store::ServerId> fleet(std::uint32_t n) {
  std::vector<brb::store::ServerId> servers;
  for (brb::store::ServerId s = 0; s < n; ++s) servers.push_back(s);
  return servers;
}

double moved_fraction(const brb::store::Partitioner& before,
                      const brb::store::Partitioner& after, int probes) {
  int moved = 0;
  for (int i = 0; i < probes; ++i) {
    const auto key = static_cast<brb::store::KeyId>(i) * 2'654'435'761ULL;
    if (before.replicas_for_key(key).front() != after.replicas_for_key(key).front()) ++moved;
  }
  return static_cast<double>(moved) / probes;
}

}  // namespace

int main() {
  std::cout << "Consistent-hash elasticity (9 servers, replication 3)\n\n";

  // 1. Ownership balance vs. virtual-node count.
  brb::stats::Table balance({"vnodes/server", "min share", "max share", "spread"});
  for (const std::uint32_t vnodes : {8u, 32u, 128u, 512u}) {
    brb::store::ConsistentHashPartitioner ring(fleet(9), 3, vnodes);
    const auto ownership = ring.ownership(100'000);
    double lo = 1.0;
    double hi = 0.0;
    for (const auto& [server, share] : ownership) {
      lo = std::min(lo, share);
      hi = std::max(hi, share);
    }
    balance.add_row({std::to_string(vnodes), brb::stats::fmt_double(lo * 100, 1) + "%",
                     brb::stats::fmt_double(hi * 100, 1) + "%",
                     brb::stats::fmt_ratio(hi / lo)});
  }
  balance.print(std::cout);
  std::cout << "(ideal share: 11.1% each; more vnodes -> tighter spread)\n\n";

  // 2. Data movement on grow / shrink.
  const int probes = 50'000;
  brb::store::ConsistentHashPartitioner base(fleet(9), 3, 128);

  brb::store::ConsistentHashPartitioner grown(fleet(9), 3, 128);
  grown.add_server(9);
  std::cout << "add 10th server : " << brb::stats::fmt_double(
                   moved_fraction(base, grown, probes) * 100, 1)
            << "% of primaries move (ideal ~10%)\n";

  brb::store::ConsistentHashPartitioner shrunk(fleet(9), 3, 128);
  shrunk.remove_server(4);
  std::cout << "remove 1 server : " << brb::stats::fmt_double(
                   moved_fraction(base, shrunk, probes) * 100, 1)
            << "% of primaries move (ideal ~11%)\n";

  // A naive modulo partitioner would reshuffle almost everything:
  brb::store::RingPartitioner mod9(9, 3);
  brb::store::RingPartitioner mod10(10, 3);
  std::cout << "modulo ring 9->10: " << brb::stats::fmt_double(
                   moved_fraction(mod9, mod10, probes) * 100, 1)
            << "% move (why consistent hashing exists)\n";
  return 0;
}
