// Trace record & replay.
//
// Production evaluations (like the paper's SoundCloud trace) replay a
// recorded request stream against candidate systems so every candidate
// sees byte-identical input. This example:
//   1. generates a workload and writes it to a trace file,
//   2. reads the trace back (round-trip through the on-disk format),
//   3. replays it through two systems and compares like-for-like.
//
//   $ ./example_trace_replay [trace.csv]
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "workload/task_gen.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/brb_example_trace.csv";

  // 1. Generate and record.
  brb::core::ScenarioConfig base;
  base.num_tasks = 30'000;
  {
    brb::util::Rng rng(123);
    const auto sizes = brb::workload::make_size_distribution(base.size_spec);
    const auto keys = brb::workload::make_key_distribution(base.key_spec);
    const auto fanout = brb::workload::make_fanout_distribution(base.fanout_spec);
    brb::workload::Dataset dataset(keys->num_keys(), *sizes, rng.split());
    brb::workload::TaskGenerator::Config gen_config;
    gen_config.num_clients = base.num_clients;
    brb::workload::CapacityPlanner planner(base.cluster);
    auto arrivals = std::make_unique<brb::workload::PoissonArrivals>(
        planner.task_rate_for_utilization(base.utilization, fanout->mean()));
    brb::workload::TaskGenerator generator(gen_config, dataset, *keys, *fanout,
                                           std::move(arrivals), rng.split());
    const auto tasks = generator.generate(base.num_tasks);
    brb::workload::TraceWriter::write_file(path, tasks);
    std::cout << "wrote " << tasks.size() << " tasks ("
              << tasks.back().arrival.as_seconds() << "s of arrivals) to " << path << "\n";
  }

  // 2. Round-trip check.
  const auto replayed = brb::workload::TraceReader::read_file(path);
  std::cout << "read back " << replayed.size() << " tasks; first fan-out "
            << replayed.front().fanout() << ", last arrival "
            << replayed.back().arrival.as_seconds() << "s\n\n";

  // 3. Replay through two systems.
  brb::stats::Table table({"system", "median", "p95", "p99"});
  for (const auto kind :
       {brb::core::SystemKind::kC3, brb::core::SystemKind::kEqualMaxCredits}) {
    brb::core::ScenarioConfig config = base;
    config.system = kind;
    config.trace_path = path;  // arrivals, fan-outs, sizes all from disk
    const brb::core::RunResult result = brb::core::run_scenario(config);
    const brb::core::LatencySummary summary = brb::core::summarize_tasks(result);
    table.add_row({to_string(kind), brb::stats::fmt_millis(summary.p50_ms),
                   brb::stats::fmt_millis(summary.p95_ms),
                   brb::stats::fmt_millis(summary.p99_ms)});
  }
  table.print(std::cout);
  std::cout << "\nBoth rows consumed byte-identical input — any difference is policy.\n";
  std::remove(path.c_str());
  return 0;
}
