// The paper's motivating scenario: playlist hydration.
//
// A music-streaming page load asks the data store for every track in a
// playlist — one *task* with a fan-out of dozens of reads. The page
// renders only when the slowest read returns, so the user-visible
// latency is the task maximum.
//
// This example replays the exact same workload (heavy playlist skew:
// most page loads touch 1-2 tracks, a few touch hundreds) through a
// task-oblivious deployment and through BRB's EqualMax-over-credits,
// then breaks latency down by playlist size. The point the paper's
// Figure 1 makes in miniature appears at scale: small playlists stop
// queueing behind giant ones.
//
//   $ ./example_playlist_fanout
#include <array>
#include <iostream>
#include <memory>
#include <vector>

#include "core/scenario.hpp"
#include "stats/latency_recorder.hpp"
#include "stats/table.hpp"
#include "workload/task_gen.hpp"

namespace {

int bucket_of(std::uint32_t fanout) {
  if (fanout <= 2) return 0;
  if (fanout <= 8) return 1;
  if (fanout <= 32) return 2;
  return 3;
}

constexpr std::array<const char*, 4> kBucketNames = {"1-2 tracks", "3-8 tracks", "9-32 tracks",
                                                     "33+ tracks"};

}  // namespace

int main() {
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;

  std::cout << "Playlist hydration: task-oblivious vs BRB (EqualMax + credits)\n"
            << "Same trace replayed through both systems; latency by playlist size.\n\n";

  // Generate one workload trace shared by both systems.
  ScenarioConfig base;
  base.num_tasks = 60'000;
  base.seed = 7;
  std::vector<brb::workload::TaskSpec> trace;
  {
    brb::util::Rng rng(base.seed);
    const auto sizes = brb::workload::make_size_distribution(base.size_spec);
    const auto keys = brb::workload::make_key_distribution(base.key_spec);
    const auto fanout = brb::workload::make_fanout_distribution(base.fanout_spec);
    brb::workload::Dataset dataset(keys->num_keys(), *sizes, rng.split());
    brb::workload::TaskGenerator::Config gen_config;
    gen_config.num_clients = base.num_clients;
    brb::workload::CapacityPlanner planner(base.cluster);
    auto arrivals = std::make_unique<brb::workload::PoissonArrivals>(
        planner.task_rate_for_utilization(base.utilization, fanout->mean()));
    brb::workload::TaskGenerator generator(gen_config, dataset, *keys, *fanout,
                                           std::move(arrivals), rng.split());
    trace = generator.generate(base.num_tasks);
  }

  std::array<std::uint64_t, 4> bucket_counts{};
  for (const auto& task : trace) ++bucket_counts[static_cast<std::size_t>(bucket_of(task.fanout()))];

  for (const SystemKind kind : {SystemKind::kFifoDirect, SystemKind::kEqualMaxCredits}) {
    ScenarioConfig config = base;
    config.system = kind;
    config.tasks_override = &trace;

    std::array<brb::stats::LatencyRecorder, 4> buckets{
        brb::stats::LatencyRecorder(false), brb::stats::LatencyRecorder(false),
        brb::stats::LatencyRecorder(false), brb::stats::LatencyRecorder(false)};
    config.on_task_complete = [&buckets](const brb::workload::TaskSpec& task,
                                         brb::sim::Duration latency) {
      buckets[static_cast<std::size_t>(bucket_of(task.fanout()))].record(latency);
    };

    const brb::core::RunResult result = brb::core::run_scenario(config);
    const brb::core::LatencySummary overall = brb::core::summarize_tasks(result);

    std::cout << "=== " << to_string(kind) << " ===\n";
    std::cout << "overall: median " << brb::stats::fmt_millis(overall.p50_ms) << "  p95 "
              << brb::stats::fmt_millis(overall.p95_ms) << "  p99 "
              << brb::stats::fmt_millis(overall.p99_ms) << "\n";
    brb::stats::Table table({"playlist size", "share", "median", "p95", "p99"});
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b].count() == 0) continue;
      table.add_row(
          {kBucketNames[b],
           brb::stats::fmt_double(100.0 * static_cast<double>(bucket_counts[b]) /
                                      static_cast<double>(trace.size()),
                                  1) +
               "%",
           brb::stats::fmt_millis(buckets[b].percentile(50).as_millis()),
           brb::stats::fmt_millis(buckets[b].percentile(95).as_millis()),
           brb::stats::fmt_millis(buckets[b].percentile(99).as_millis())});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Small playlists dominate page loads; BRB lets them bypass the\n"
               "giants' queues — that is where the median and p95 wins come from.\n";
  return 0;
}
